package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/obsv"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// ChannelConfig drives the event-channel backpressure experiment: a real
// jecho publisher over the in-process transport with one artificially
// stalled subscription beside healthy ones — the paper's slow-receiver
// scenario (§2.5, the iPAQ experiments), measured at the channel layer.
type ChannelConfig struct {
	// Frames is the number of events to publish per policy.
	Frames int
	// Healthy is the number of live subscribers next to the stalled one.
	Healthy int
	// QueueDepth bounds each subscription's send queue.
	QueueDepth int
	// FrameSize is the square image edge length.
	FrameSize int
}

// DefaultChannelConfig mirrors the backpressure test shape at a size that
// runs in well under a second.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{Frames: 300, Healthy: 2, QueueDepth: 8, FrameSize: 32}
}

// ChannelRow is one (policy, subscription) outcome.
type ChannelRow struct {
	// Policy is the overflow policy under test.
	Policy string
	// Sub labels the subscription ("stalled", "healthy-1", ...).
	Sub string
	// Published counts events modulated for the subscription.
	Published uint64
	// Delivered counts messages the receiver completed (0 for stalled).
	Delivered uint64
	// Dropped counts frames shed by the overflow policy.
	Dropped uint64
	// QueueHW is the queue high-water mark.
	QueueHW uint64
	// Coalesced counts feedback frames superseded before sending.
	Coalesced uint64
	// WorstPublishMS is the worst single Publish latency seen while this
	// policy ran (same value across the policy's rows).
	WorstPublishMS float64
}

// StageRow is the trace-derived per-stage latency breakdown of one policy
// run, aggregated over the frames delivered to the reference healthy
// subscriber. The stages partition the end-to-end path: modulation at the
// publisher, queueing plus wire transit, and demodulation at the receiver.
// Latencies are wall-clock means in milliseconds.
type StageRow struct {
	// Policy is the overflow policy under test.
	Policy string
	// Frames is how many frames were matched across both trace streams.
	Frames int
	// ModulateMS is the mean sender-side modulation latency.
	ModulateMS float64
	// QueueWireMS is the mean time between modulation completing and
	// demodulation starting: queue residency plus transport transit.
	QueueWireMS float64
	// DemodulateMS is the mean receiver-side demodulation latency.
	DemodulateMS float64
	// TraceDropped counts trace-ring overflows during the run (0 means the
	// breakdown saw every event).
	TraceDropped uint64
}

// ChannelExperiment runs the slow-subscriber scenario once per overflow
// policy that sheds load (DropNewest, DropOldest) and reports the channel
// metrics: Publish stays in handoff territory while the stalled peer's
// backlog turns into drops and coalesced feedback, and the healthy
// subscribers see every frame. The second return is the trace-derived
// per-stage latency breakdown (publisher and reference subscriber share
// one tracer, so their timestamps are directly comparable).
func ChannelExperiment(cfg ChannelConfig) ([]ChannelRow, []StageRow, error) {
	var rows []ChannelRow
	var stages []StageRow
	for _, policy := range []jecho.OverflowPolicy{jecho.DropNewest, jecho.DropOldest} {
		r, st, err := runChannelOnce(cfg, policy)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: channel %v: %w", policy, err)
		}
		rows = append(rows, r...)
		stages = append(stages, st)
	}
	return rows, stages, nil
}

func runChannelOnce(cfg ChannelConfig, policy jecho.OverflowPolicy) ([]ChannelRow, StageRow, error) {
	mem := transport.NewMem()
	reg, _ := imaging.Builtins()
	// One tracer shared by the publisher and the reference subscriber
	// (healthy-1): publish and demod events then carry timestamps from the
	// same monotonic origin, which is what lets the breakdown subtract
	// them. Sized so a full run cannot wrap the ring.
	tracer := obsv.NewTracer(4 * cfg.Frames * (cfg.Healthy + 2))
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Transport:      mem,
		Builtins:       reg,
		FeedbackEvery:  1,
		QueueDepth:     cfg.QueueDepth,
		OverflowPolicy: policy,
		Tracer:         tracer,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		return nil, StageRow{}, err
	}
	defer pub.Close()

	subs := make([]*jecho.Subscriber, 0, cfg.Healthy)
	for i := 0; i < cfg.Healthy; i++ {
		sreg, _ := imaging.Builtins()
		scfg := jecho.SubscriberConfig{
			Addr:        pub.Addr(),
			Transport:   mem,
			Name:        fmt.Sprintf("healthy-%d", i+1),
			Source:      imaging.HandlerSource(64),
			Handler:     imaging.HandlerName,
			CostModel:   costmodel.DataSizeName,
			Natives:     []string{"displayImage"},
			Builtins:    sreg,
			Environment: costmodel.DefaultEnvironment(),
			Logf:        func(string, ...any) {},
		}
		if i == 0 {
			scfg.Tracer = tracer
		}
		sub, err := jecho.Subscribe(scfg)
		if err != nil {
			return nil, StageRow{}, err
		}
		defer sub.Close()
		subs = append(subs, sub)
	}
	// The stalled peer: a valid handshake, then silence.
	stalled, err := mem.Dial(pub.Addr())
	if err != nil {
		return nil, StageRow{}, err
	}
	defer stalled.Close()
	hello, err := wire.Marshal(&wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: "stalled",
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		return nil, StageRow{}, err
	}
	if err := stalled.WriteFrame(hello); err != nil {
		return nil, StageRow{}, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() != cfg.Healthy+1 {
		if time.Now().After(deadline) {
			return nil, StageRow{}, fmt.Errorf("only %d of %d subscriptions registered", pub.Subscribers(), cfg.Healthy+1)
		}
		time.Sleep(time.Millisecond)
	}

	var worst time.Duration
	for i := 0; i < cfg.Frames; i++ {
		t0 := time.Now()
		if _, err := pub.Publish(imaging.NewFrame(cfg.FrameSize, cfg.FrameSize, int64(i))); err != nil {
			return nil, StageRow{}, err
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	// Let the healthy receivers drain.
	deadline = time.Now().Add(10 * time.Second)
	for _, sub := range subs {
		for sub.Processed() < uint64(cfg.Frames) {
			if time.Now().After(deadline) {
				return nil, StageRow{}, fmt.Errorf("healthy subscriber drained %d of %d", sub.Processed(), cfg.Frames)
			}
			time.Sleep(time.Millisecond)
		}
	}

	worstMS := float64(worst.Microseconds()) / 1000
	var rows []ChannelRow
	for _, info := range pub.Subscriptions() {
		name := info.ID[:strings.IndexByte(info.ID, '#')]
		var delivered uint64
		for i, sub := range subs {
			if name == fmt.Sprintf("healthy-%d", i+1) {
				delivered = sub.Processed()
			}
		}
		rows = append(rows, ChannelRow{
			Policy:         policy.String(),
			Sub:            name,
			Published:      info.Metrics.Published,
			Delivered:      delivered,
			Dropped:        info.Metrics.Dropped,
			QueueHW:        info.Metrics.QueueHighWater,
			Coalesced:      info.Metrics.FeedbackCoalesced,
			WorstPublishMS: worstMS,
		})
	}
	return rows, stageBreakdown(policy.String(), tracer, "healthy-1"), nil
}

// stageBreakdown derives the per-stage latency split from the shared
// trace: EvPublish (publisher side, Sub "ref#n") and EvDemod (subscriber
// side, Sub "ref") are matched on the wire sequence number; the stage
// times are the publish Dur (modulation), the demod Dur (demodulation),
// and the timestamp gap between them minus the demod time (queue + wire).
func stageBreakdown(policy string, tr *obsv.Tracer, ref string) StageRow {
	row := StageRow{Policy: policy, TraceDropped: tr.Dropped()}
	pubAt := make(map[uint64]obsv.Event)
	var modNS, qwNS, demodNS float64
	for _, ev := range tr.Snapshot() {
		switch ev.Kind {
		case obsv.EvPublish:
			if strings.HasPrefix(ev.Sub, ref+"#") {
				pubAt[ev.EventSeq] = ev
			}
		case obsv.EvDemod:
			if ev.Sub != ref {
				continue
			}
			pub, ok := pubAt[ev.EventSeq]
			if !ok {
				continue
			}
			row.Frames++
			modNS += float64(pub.Dur)
			demodNS += float64(ev.Dur)
			if gap := float64(ev.At-pub.At) - float64(ev.Dur); gap > 0 {
				qwNS += gap
			}
		}
	}
	if row.Frames > 0 {
		n := float64(row.Frames)
		row.ModulateMS = modNS / n / 1e6
		row.QueueWireMS = qwNS / n / 1e6
		row.DemodulateMS = demodNS / n / 1e6
	}
	return row
}

// WriteChannelStages renders the per-stage latency breakdown.
func WriteChannelStages(w io.Writer, rows []StageRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Frames),
			fmt.Sprintf("%.4f", r.ModulateMS),
			fmt.Sprintf("%.4f", r.QueueWireMS),
			fmt.Sprintf("%.4f", r.DemodulateMS),
			fmt.Sprintf("%d", r.TraceDropped),
		})
	}
	writeTable(w, "Channel per-stage latency (trace-derived, reference healthy subscriber)",
		[]string{"policy", "frames", "modulateMS", "queue+wireMS", "demodulateMS", "traceDropped"},
		out)
}

// WriteChannel renders the backpressure experiment.
func WriteChannel(w io.Writer, rows []ChannelRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Policy, r.Sub,
			fmt.Sprintf("%d", r.Published),
			fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%d", r.QueueHW),
			fmt.Sprintf("%d", r.Coalesced),
			fmt.Sprintf("%.3f", r.WorstPublishMS),
		})
	}
	writeTable(w, "Channel backpressure: one stalled + N healthy subscribers (mem transport)",
		[]string{"policy", "sub", "published", "delivered", "dropped", "queueHW", "fbCoalesced", "worstPubMS"},
		out)
}
