package mir

import (
	"fmt"
	"strings"
)

// Program is a message-handling method: a parameter list and a straight list
// of instructions. Instruction index i is node i of the Unit Graph.
type Program struct {
	// Name is the handler name, used for diagnostics and wire routing.
	Name string
	// Params are the parameter registers, bound in order at invocation.
	// The first parameter conventionally receives the event/message.
	Params []string
	// Instrs is the instruction list. Control starts at index 0.
	Instrs []Instr

	labelIdx map[string]int
}

// NewProgram builds and validates a program.
func NewProgram(name string, params []string, instrs []Instr) (*Program, error) {
	p := &Program{Name: name, Params: params, Instrs: instrs}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks structural well-formedness: labels resolve, operand fields
// required by each opcode are present, and the program ends in a terminator.
// It also (re)builds the label index used by LabelIndex.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("mir: program with empty name")
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("mir: program %q has no instructions", p.Name)
	}
	seenParam := make(map[string]bool, len(p.Params))
	for _, prm := range p.Params {
		if prm == "" {
			return fmt.Errorf("mir: program %q: empty parameter name", p.Name)
		}
		if seenParam[prm] {
			return fmt.Errorf("mir: program %q: duplicate parameter %q", p.Name, prm)
		}
		seenParam[prm] = true
	}
	p.labelIdx = make(map[string]int)
	for i := range p.Instrs {
		lbl := p.Instrs[i].Label
		if lbl == "" {
			continue
		}
		if _, dup := p.labelIdx[lbl]; dup {
			return fmt.Errorf("mir: program %q: duplicate label %q", p.Name, lbl)
		}
		p.labelIdx[lbl] = i
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := p.validateInstr(in); err != nil {
			return fmt.Errorf("mir: program %q instr %d (%s): %w", p.Name, i, in, err)
		}
	}
	last := &p.Instrs[len(p.Instrs)-1]
	if !last.IsTerminator() {
		return fmt.Errorf("mir: program %q: control falls off the end (last instr %s)", p.Name, last)
	}
	return nil
}

func (p *Program) validateInstr(in *Instr) error {
	needDst := func() error {
		if in.Dst == "" {
			return fmt.Errorf("missing destination register")
		}
		return nil
	}
	needSrc := func() error {
		if in.Src == "" {
			return fmt.Errorf("missing source register")
		}
		return nil
	}
	needTarget := func() error {
		if in.Target == "" {
			return fmt.Errorf("missing branch target")
		}
		if _, ok := p.labelIdx[in.Target]; !ok {
			return fmt.Errorf("undefined label %q", in.Target)
		}
		return nil
	}
	switch in.Op {
	case OpConst:
		if in.Lit == nil {
			return fmt.Errorf("missing literal")
		}
		return needDst()
	case OpMove, OpUn, OpCast, OpLen:
		if err := needDst(); err != nil {
			return err
		}
		return needSrc()
	case OpBin:
		if err := needDst(); err != nil {
			return err
		}
		if in.Src == "" || in.Src2 == "" {
			return fmt.Errorf("binary op needs two operands")
		}
		if in.Bin == 0 {
			return fmt.Errorf("missing binary operator")
		}
		return nil
	case OpGoto:
		return needTarget()
	case OpIf, OpIfNot:
		if err := needSrc(); err != nil {
			return err
		}
		return needTarget()
	case OpCall:
		if in.Fn == "" {
			return fmt.Errorf("missing function name")
		}
		for _, a := range in.Args {
			if a == "" {
				return fmt.Errorf("empty call argument register")
			}
		}
		return nil
	case OpReturn:
		return nil
	case OpNew:
		if in.Class == "" {
			return fmt.Errorf("missing class name")
		}
		return needDst()
	case OpGetField:
		if in.Field == "" {
			return fmt.Errorf("missing field name")
		}
		if err := needDst(); err != nil {
			return err
		}
		return needSrc()
	case OpSetField:
		if in.Field == "" {
			return fmt.Errorf("missing field name")
		}
		if in.Dst == "" {
			return fmt.Errorf("missing object register")
		}
		return needSrc()
	case OpNewArray:
		if in.ElemKind != KindInt && in.ElemKind != KindFloat && in.ElemKind != KindBytes {
			return fmt.Errorf("newarray element kind must be int, float or bytes")
		}
		if err := needDst(); err != nil {
			return err
		}
		return needSrc()
	case OpArrGet:
		if err := needDst(); err != nil {
			return err
		}
		if in.Src == "" || in.Src2 == "" {
			return fmt.Errorf("arrget needs array and index registers")
		}
		return nil
	case OpArrSet:
		if in.Dst == "" || in.Src2 == "" || in.Src == "" {
			return fmt.Errorf("arrset needs array, index and value registers")
		}
		return nil
	case OpInstanceOf:
		if in.Class == "" {
			return fmt.Errorf("missing class name")
		}
		if err := needDst(); err != nil {
			return err
		}
		return needSrc()
	case OpGetGlobal:
		if in.Field == "" {
			return fmt.Errorf("missing global name")
		}
		return needDst()
	case OpSetGlobal:
		if in.Field == "" {
			return fmt.Errorf("missing global name")
		}
		return needSrc()
	default:
		return fmt.Errorf("unknown opcode %d", uint8(in.Op))
	}
}

// LabelIndex resolves a label to its instruction index.
func (p *Program) LabelIndex(label string) (int, bool) {
	i, ok := p.labelIdx[label]
	return i, ok
}

// Successors returns the instruction indices control may flow to from index
// i. A return instruction has no successors (the Unit Graph adds a virtual
// exit node separately). A branch whose label does not resolve — a program
// that bypassed Validate, or whose label index was never built — is an
// error: silently treating the miss as index 0 would corrupt every graph
// built on top (the Unit Graph ConvexCut partitions over).
func (p *Program) Successors(i int) ([]int, error) {
	in := &p.Instrs[i]
	switch in.Op {
	case OpReturn:
		return nil, nil
	case OpGoto:
		t, ok := p.LabelIndex(in.Target)
		if !ok {
			return nil, fmt.Errorf("mir: program %q instr %d (%s): undefined label %q", p.Name, i, in, in.Target)
		}
		return []int{t}, nil
	case OpIf, OpIfNot:
		t, ok := p.LabelIndex(in.Target)
		if !ok {
			return nil, fmt.Errorf("mir: program %q instr %d (%s): undefined label %q", p.Name, i, in, in.Target)
		}
		succ := []int{}
		if i+1 < len(p.Instrs) {
			succ = append(succ, i+1)
		}
		if t != i+1 {
			succ = append(succ, t)
		} else if len(succ) == 0 {
			succ = append(succ, t)
		}
		return succ, nil
	default:
		if i+1 < len(p.Instrs) {
			return []int{i + 1}, nil
		}
		return nil, nil
	}
}

// Registers returns every register mentioned by the program (params first,
// then in first-mention order).
func (p *Program) Registers() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(r string) {
		if r != "" && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, prm := range p.Params {
		add(prm)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		for _, r := range in.Defs() {
			add(r)
		}
		for _, r := range in.Uses() {
			add(r)
		}
	}
	return out
}

// String renders the whole program in assembler syntax.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%s) {\n", p.Name, strings.Join(p.Params, ", "))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Label != "" {
			fmt.Fprintf(&b, "%s:\n", in.Label)
		}
		fmt.Fprintf(&b, "  %s\n", in)
	}
	b.WriteString("}\n")
	return b.String()
}
