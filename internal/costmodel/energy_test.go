package costmodel_test

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/partition"
	"methodpart/internal/reconfig"
	"methodpart/internal/testprog"
)

func TestEnergyCapacityComponents(t *testing.T) {
	m := costmodel.NewEnergy()
	env := costmodel.DefaultEnvironment()
	radioOnly := costmodel.Stat{Count: 5, Prob: 1, Bytes: 100, DemodWork: 0}
	cpuOnly := costmodel.Stat{Count: 5, Prob: 1, Bytes: 0, DemodWork: 1000}
	both := costmodel.Stat{Count: 5, Prob: 1, Bytes: 100, DemodWork: 1000}
	r := m.Capacity(radioOnly, env)
	c := m.Capacity(cpuOnly, env)
	b := m.Capacity(both, env)
	if r+c != b {
		t.Errorf("energy not additive: %d + %d != %d", r, c, b)
	}
	if r != int64(100*m.RxNanojoulePerByte) {
		t.Errorf("radio term = %d", r)
	}
}

// TestEnergyPrefersSenderCompute: with equal continuation sizes, the model
// must prefer the cut that leaves less work at the (battery-powered)
// receiver — the later split.
func TestEnergyPrefersSenderCompute(t *testing.T) {
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, reg, costmodel.NewEnergy())
	if err != nil {
		t.Fatal(err)
	}
	stats := make(map[int32]costmodel.Stat)
	var earliest, latest int32 = -1, -1
	for id := int32(0); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if len(p.Vars) == 0 && id != partition.RawPSEID {
			stats[id] = costmodel.Stat{Count: 0}
			continue
		}
		// Same bytes everywhere; receiver work shrinks for later cuts.
		demod := float64(10000 - 1000*p.Edge.To)
		if demod < 0 {
			demod = 0
		}
		stats[id] = costmodel.Stat{Count: 50, Prob: 1, Bytes: 5000, ModWork: 1000, DemodWork: demod}
		if earliest < 0 || p.Edge.To < mustEdgeTo(c, earliest) {
			earliest = id
		}
		if latest < 0 || p.Edge.To > mustEdgeTo(c, latest) {
			latest = id
		}
	}
	unit := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	plan, _, err := unit.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Split(latest) {
		t.Errorf("energy model chose %v, want the latest cut (PSE %d)", plan, latest)
	}
	if plan.Raw() || plan.Split(earliest) && earliest != latest {
		t.Errorf("energy model kept work at the receiver: %v", plan)
	}
}

func mustEdgeTo(c *partition.Compiled, id int32) int {
	p, _ := c.PSE(id)
	return p.Edge.To
}

func TestEnergyByName(t *testing.T) {
	m, err := costmodel.ByName(costmodel.EnergyName)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "energy" {
		t.Errorf("name = %q", m.Name())
	}
}
