package wire

import (
	"testing"
	"testing/quick"

	"methodpart/internal/mir"
)

func roundTrip(t *testing.T, v mir.Value) mir.Value {
	t.Helper()
	e := NewEncoder()
	if err := e.EncodeValue(v); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	out, err := d.DecodeValue()
	if err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", d.Remaining())
	}
	return out
}

func TestValueRoundTrip(t *testing.T) {
	obj := mir.NewObject("ImageData")
	obj.Fields["width"] = mir.Int(100)
	obj.Fields["buff"] = mir.Bytes{1, 2, 3}
	obj.Fields["name"] = mir.Str("frame")
	values := []mir.Value{
		mir.Null{},
		mir.Bool(true),
		mir.Bool(false),
		mir.Int(-123456789),
		mir.Float(3.14159),
		mir.Str(""),
		mir.Str("hello"),
		mir.Bytes{},
		mir.Bytes{0, 255, 7},
		mir.IntArray{1, -2, 3},
		mir.FloatArray{0.5, -0.25},
		obj,
	}
	for _, v := range values {
		got := roundTrip(t, v)
		if !mir.Equal(v, got) {
			t.Errorf("round trip of %v = %v", v, got)
		}
	}
}

func TestSharedReferences(t *testing.T) {
	// Two registers aliasing one object must decode to one shared object,
	// and the duplicate must cost only a back-reference on the wire.
	obj := mir.NewObject("Big")
	obj.Fields["buff"] = make(mir.Bytes, 1000)

	e := NewEncoder()
	if err := e.EncodeValue(obj); err != nil {
		t.Fatal(err)
	}
	firstLen := e.Len()
	if err := e.EncodeValue(obj); err != nil {
		t.Fatal(err)
	}
	dupCost := e.Len() - firstLen
	if dupCost != refSize {
		t.Fatalf("duplicate reference cost = %d, want %d", dupCost, refSize)
	}

	d := NewDecoder(e.Bytes())
	a, err := d.DecodeValue()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.DecodeValue()
	if err != nil {
		t.Fatal(err)
	}
	if a.(*mir.Object) != b.(*mir.Object) {
		t.Error("shared object decoded to distinct objects")
	}
}

func TestSharedSliceReferences(t *testing.T) {
	buf := make(mir.Bytes, 64)
	o1 := mir.NewObject("A")
	o1.Fields["b"] = buf
	o2 := mir.NewObject("B")
	o2.Fields["b"] = buf
	e := NewEncoder()
	if err := e.EncodeValue(o1); err != nil {
		t.Fatal(err)
	}
	if err := e.EncodeValue(o2); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	d1, _ := d.DecodeValue()
	d2, err := d.DecodeValue()
	if err != nil {
		t.Fatal(err)
	}
	b1 := d1.(*mir.Object).Fields["b"].(mir.Bytes)
	b2 := d2.(*mir.Object).Fields["b"].(mir.Bytes)
	b1[0] = 42
	if b2[0] != 42 {
		t.Error("shared byte slice decoded to distinct storage")
	}
}

func TestSizerMatchesEncoder(t *testing.T) {
	obj := mir.NewObject("AppComp")
	obj.Fields["s1"] = mir.Str("aa")
	obj.Fields["ia"] = make(mir.IntArray, 20)
	obj.Fields["fa"] = make(mir.FloatArray, 10)
	inner := mir.NewObject("AppBase")
	inner.Fields["c"] = mir.Int(1202)
	obj.Fields["ab1"] = inner
	obj.Fields["ab2"] = inner // shared reference

	values := []mir.Value{
		mir.Null{}, mir.Bool(true), mir.Int(5), mir.Float(2.5),
		mir.Str("xyz"), mir.Bytes{9, 9}, mir.IntArray{1}, obj, obj,
	}
	e := NewEncoder()
	s := NewSizer()
	var sized int64
	for _, v := range values {
		if err := e.EncodeValue(v); err != nil {
			t.Fatal(err)
		}
		sized += s.Size(v)
	}
	if int64(e.Len()) != sized {
		t.Fatalf("sizer = %d, encoder = %d", sized, e.Len())
	}
}

func TestSizerPropertyMatchesEncoder(t *testing.T) {
	f := func(ints []int64, bs []byte, s string, n int64) bool {
		obj := mir.NewObject("T")
		obj.Fields["a"] = mir.IntArray(ints)
		obj.Fields["b"] = mir.Bytes(bs)
		obj.Fields["c"] = mir.Str(s)
		obj.Fields["d"] = mir.Int(n)
		e := NewEncoder()
		if err := e.EncodeValue(obj); err != nil {
			return false
		}
		return int64(e.Len()) == SizeOf(obj)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	ev := mir.NewObject("ImageData")
	ev.Fields["buff"] = mir.Bytes{1, 2, 3}
	msgs := []any{
		&Raw{Handler: "push", Seq: 7, Event: ev},
		&Continuation{
			Handler:    "push",
			Seq:        9,
			PSEID:      2,
			ResumeNode: 5,
			ModWork:    1234,
			Vars: map[string]mir.Value{
				"r3": ev,
				"i":  mir.Int(3),
			},
		},
		&Feedback{
			Handler:     "push",
			PlanVersion: 12,
			Stats: []PSEStat{
				{ID: 1, Count: 10, Bytes: 100.5, ModWork: 3, DemodWork: 7, Prob: 0.5},
				{ID: 2, Count: 4, Bytes: 9, ModWork: 1, DemodWork: 2, Prob: 1},
			},
		},
		&Plan{Handler: "push", Version: 3, Split: []int32{1, 2}, Profile: []int32{0, 1, 2}},
		&Subscribe{Subscriber: "client-1", Handler: "push", Source: "func push(e) {\n return\n}", CostModel: "datasize", Natives: []string{"displayImage", "beep"}},
	}
	for _, m := range msgs {
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("marshal %T: %v", m, err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", m, err)
		}
		switch orig := m.(type) {
		case *Raw:
			got := back.(*Raw)
			if got.Handler != orig.Handler || got.Seq != orig.Seq || !mir.Equal(got.Event, orig.Event) {
				t.Errorf("raw round trip: %+v", got)
			}
		case *Continuation:
			got := back.(*Continuation)
			if got.PSEID != orig.PSEID || got.ResumeNode != orig.ResumeNode || got.ModWork != orig.ModWork {
				t.Errorf("continuation header: %+v", got)
			}
			if len(got.Vars) != len(orig.Vars) {
				t.Errorf("vars = %v", got.Vars)
			}
			for k, v := range orig.Vars {
				if !mir.Equal(got.Vars[k], v) {
					t.Errorf("var %s = %v, want %v", k, got.Vars[k], v)
				}
			}
		case *Feedback:
			got := back.(*Feedback)
			if got.PlanVersion != orig.PlanVersion {
				t.Errorf("plan version = %d, want %d", got.PlanVersion, orig.PlanVersion)
			}
			if len(got.Stats) != len(orig.Stats) {
				t.Fatalf("stats = %+v", got.Stats)
			}
			for i := range orig.Stats {
				if got.Stats[i] != orig.Stats[i] {
					t.Errorf("stat %d = %+v, want %+v", i, got.Stats[i], orig.Stats[i])
				}
			}
		case *Plan:
			got := back.(*Plan)
			if got.Version != orig.Version || len(got.Split) != 2 || len(got.Profile) != 3 {
				t.Errorf("plan = %+v", got)
			}
		case *Subscribe:
			got := back.(*Subscribe)
			if got.Subscriber != orig.Subscriber || got.Handler != orig.Handler ||
				got.Source != orig.Source || got.CostModel != orig.CostModel ||
				len(got.Natives) != len(orig.Natives) {
				t.Errorf("subscribe = %+v", got)
			}
			for i := range orig.Natives {
				if got.Natives[i] != orig.Natives[i] {
					t.Errorf("native %d = %q", i, got.Natives[i])
				}
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := Unmarshal([]byte{byte(MsgRaw), 1}); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestDanglingReference(t *testing.T) {
	d := NewDecoder([]byte{tagRef, 9, 0, 0, 0})
	if _, err := d.DecodeValue(); err == nil {
		t.Error("dangling reference accepted")
	}
}
