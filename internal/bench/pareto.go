package bench

import (
	"fmt"
	"io"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/reconfig"
	"methodpart/internal/simnet"
)

// This file is the `mpbench -experiment pareto` harness: a workload where
// the Pareto front of the image handler genuinely forks, so latency-first
// and cost-first SLO policies provably select different operating points —
// and each measurably wins its own objective.

// DefaultParetoConfig inverts the §5.1 hardware ratio: a *slow* sender (an
// embedded camera node) feeding a fast client over a quick link, streaming
// only large frames. Resizing at the server now costs ~33 virtual ms of
// sender work per frame but saves ~36% of the bytes, so the front forks:
// splitting early (ship the original) minimises end-to-end latency while
// splitting after the resize (ship display-sized) minimises bytes on the
// wire. No single scalar model prefers both.
func DefaultParetoConfig() ImageConfig {
	cfg := DefaultImageConfig()
	cfg.ServerSpeed = 1200
	cfg.ClientSpeed = 24000
	cfg.LinkBytesPerMS = 2000
	cfg.LinkLatencyMS = 1
	cfg.Frames = 200
	return cfg
}

// ParetoRow is one SLO policy's measured outcome on the forked workload.
type ParetoRow struct {
	// Policy is the SLO policy under test.
	Policy reconfig.SLOPolicy
	// Cut is the cut the policy's last selection chose.
	Cut []int32
	// FrontSize is the number of points on that selection's Pareto front.
	FrontSize int
	// KBPerFrame is the mean payload shipped per frame.
	KBPerFrame float64
	// MeanSpanMS is the mean end-to-end latency per frame (virtual ms).
	MeanSpanMS float64
	// FPS is the throughput.
	FPS float64
	// SenderWorkPerFrame / ClientWorkPerFrame are mean work units per
	// frame on each side of the split.
	SenderWorkPerFrame, ClientWorkPerFrame float64
}

// ParetoComparison is the full experiment outcome: one row per policy, the
// front the selections chose from, and the verdicts the experiment exists
// to demonstrate.
type ParetoComparison struct {
	// Rows holds the per-policy outcomes (latency-first, cost-first).
	Rows []ParetoRow
	// Front is the Pareto front of the latency-first run's last selection
	// (both runs see the same workload, so the fronts agree up to
	// profiling noise).
	Front []reconfig.FrontPoint
	// CutsDiffer reports whether the two policies chose different cuts.
	CutsDiffer bool
	// LatencyWins reports whether latency-first measured a strictly lower
	// mean end-to-end latency than cost-first.
	LatencyWins bool
	// CostWins reports whether cost-first measured strictly fewer bytes
	// per frame than latency-first.
	CostWins bool
}

// RunPareto runs the adaptive image pipeline once per policy and compares
// the operating points the policies settled on.
func RunPareto(cfg ImageConfig) (*ParetoComparison, error) {
	policies := []reconfig.SLOPolicy{reconfig.LatencyFirst, reconfig.CostFirst}
	cmp := &ParetoComparison{}
	for _, policy := range policies {
		f, err := newImageFixture(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: pareto: %w", err)
		}
		rc := RunConfig{
			Compiled:         f.c,
			SenderEnv:        interp.NewEnv(f.classes, f.builtins()),
			ReceiverEnv:      interp.NewEnv(f.classes, f.builtins()),
			Sender:           simnet.NewHost("camera", cfg.ServerSpeed),
			Receiver:         simnet.NewHost("client", cfg.ClientSpeed),
			Link:             &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS},
			Frames:           cfg.Frames,
			Workload:         imageWorkload(cfg, ScenarioLarge),
			OverheadBytes:    64,
			Warmup:           10,
			Adaptive:         true,
			ReconfigAtSender: true,
			Policy:           policy,
			Nominal: costmodel.Environment{
				SenderSpeed:   cfg.ServerSpeed,
				ReceiverSpeed: cfg.ClientSpeed,
				Bandwidth:     cfg.LinkBytesPerMS,
				LatencyMS:     cfg.LinkLatencyMS,
			},
		}
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("bench: pareto %s: %w", policy, err)
		}
		if res.Explain == nil {
			return nil, fmt.Errorf("bench: pareto %s: no plan selection ran", policy)
		}
		frames := float64(res.Frames)
		row := ParetoRow{
			Policy:             policy,
			Cut:                append([]int32(nil), res.Explain.Cut...),
			FrontSize:          len(res.Explain.Front),
			KBPerFrame:         float64(res.Bytes) / frames / 1024,
			MeanSpanMS:         res.MeanSpanMS,
			FPS:                res.FPS,
			SenderWorkPerFrame: float64(res.ModWork) / frames,
			ClientWorkPerFrame: float64(res.DemodWork) / frames,
		}
		cmp.Rows = append(cmp.Rows, row)
		if policy == reconfig.LatencyFirst {
			cmp.Front = res.Explain.Front
		}
	}
	lat, cost := cmp.Rows[0], cmp.Rows[1]
	cmp.CutsDiffer = fmt.Sprint(lat.Cut) != fmt.Sprint(cost.Cut)
	cmp.LatencyWins = lat.MeanSpanMS < cost.MeanSpanMS
	cmp.CostWins = cost.KBPerFrame < lat.KBPerFrame
	return cmp, nil
}

// WritePareto renders the comparison: the per-policy table, the front the
// selections chose from, and the verdict lines the acceptance criteria
// check.
func WritePareto(w io.Writer, cmp *ParetoComparison) {
	rows := make([][]string, 0, len(cmp.Rows))
	for _, r := range cmp.Rows {
		rows = append(rows, []string{
			r.Policy.String(),
			fmt.Sprint(r.Cut),
			fmt.Sprintf("%d", r.FrontSize),
			fmt.Sprintf("%.1f", r.KBPerFrame),
			fmt.Sprintf("%.1f", r.MeanSpanMS),
			fmt.Sprintf("%.2f", r.FPS),
			fmt.Sprintf("%.0f", r.SenderWorkPerFrame),
			fmt.Sprintf("%.0f", r.ClientWorkPerFrame),
		})
	}
	writeTable(w,
		"Pareto-front policy comparison (slow sender, fast client, large frames)",
		[]string{"Policy", "Cut", "Front", "KB/frame", "Span ms", "FPS", "SendWork/f", "RecvWork/f"},
		rows)
	fmt.Fprintln(w)
	frontRows := make([][]string, 0, len(cmp.Front))
	for _, p := range cmp.Front {
		mark := ""
		if p.Balanced {
			mark = "balanced"
		}
		frontRows = append(frontRows, []string{
			fmt.Sprint(p.Cut),
			fmt.Sprintf("%.0f", p.Vec.Bytes),
			fmt.Sprintf("%.2f", p.Vec.LatencyMS),
			fmt.Sprintf("%.0f", p.Vec.SenderWork),
			fmt.Sprintf("%.0f", p.Vec.ReceiverWork),
			fmt.Sprintf("%.3f", p.Vec.FailureRate),
			mark,
		})
	}
	writeTable(w,
		"Pareto front of the last selection (also served via /debug/split)",
		[]string{"Cut", "Bytes", "Latency ms", "SendWork", "RecvWork", "FailRate", ""},
		frontRows)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "cuts differ: %v\n", cmp.CutsDiffer)
	fmt.Fprintf(w, "latency-first wins latency: %v\n", cmp.LatencyWins)
	fmt.Fprintf(w, "cost-first wins bytes: %v\n", cmp.CostWins)
}
