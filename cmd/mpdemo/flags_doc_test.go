package main

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestFlagsMatchExperimentsDoc is the docs-drift guard: every flag mpdemo
// registers must have a row in EXPERIMENTS.md's "### mpdemo" table, and
// every documented flag must still exist in the binary.
func TestFlagsMatchExperimentsDoc(t *testing.T) {
	df := newDemoFlags()
	registered := map[string]*flag.Flag{}
	df.fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = f })

	documented := docFlagTable(t, "../../EXPERIMENTS.md", "### mpdemo")
	for name := range registered {
		if _, ok := documented[name]; !ok {
			t.Errorf("flag -%s is registered by mpdemo but missing from EXPERIMENTS.md's mpdemo table", name)
		}
	}
	for name := range documented {
		if _, ok := registered[name]; !ok {
			t.Errorf("EXPERIMENTS.md documents -%s but mpdemo does not register it", name)
		}
	}
}

// docFlagTable returns the flag rows (name -> full row text) of the
// markdown table that follows the given heading.
func docFlagTable(t *testing.T, path, heading string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, l := range lines {
		if strings.TrimSpace(l) == heading {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("%s: heading %q not found", path, heading)
	}
	flagRow := regexp.MustCompile("^\\| `-([a-z0-9-]+)` \\|")
	rows := map[string]string{}
	for _, l := range lines[start+1:] {
		if strings.HasPrefix(l, "#") {
			break
		}
		if m := flagRow.FindStringSubmatch(l); m != nil {
			rows[m[1]] = l
		}
	}
	if len(rows) == 0 {
		t.Fatalf("%s: no flag rows under %q", path, heading)
	}
	return rows
}
