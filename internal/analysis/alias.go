package analysis

import "methodpart/internal/mir"

// ComputeAliases performs the light flow-insensitive points-to analysis the
// paper relies on to recognise edges whose INTER sets have identical runtime
// cost under different variable names (§3, §4.1): registers connected by
// move/cast chains refer to the same value, provided each register has a
// single static definition (so the flow-insensitive view is sound).
//
// The result maps each register to its canonical representative; registers
// not in move/cast chains map to themselves.
func ComputeAliases(prog *mir.Program) map[string]string {
	defCount := make(map[string]int)
	for _, prm := range prog.Params {
		defCount[prm]++
	}
	for i := range prog.Instrs {
		for _, d := range prog.Instrs[i].Defs() {
			defCount[d]++
		}
	}

	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Prefer the lexicographically smaller root for determinism.
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op != mir.OpMove && in.Op != mir.OpCast {
			continue
		}
		if defCount[in.Dst] == 1 && defCount[in.Src] == 1 {
			union(in.Dst, in.Src)
		}
	}

	out := make(map[string]string)
	for _, r := range prog.Registers() {
		out[r] = find(r)
	}
	return out
}

// CanonicalSet rewrites a variable set through the alias map, collapsing
// aliased registers onto one representative.
func CanonicalSet(vars VarSet, aliases map[string]string) VarSet {
	out := make(VarSet, len(vars))
	for v := range vars {
		if c, ok := aliases[v]; ok {
			out[c] = true
		} else {
			out[v] = true
		}
	}
	return out
}
