package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// FanoutConfig drives the plan-equivalence fan-out experiment: N raw-conn
// subscribers with identical handlers on one in-process publisher, and the
// publish-side throughput measured as the subscriber count grows. Three
// plan modes isolate what class sharing buys:
//
//   - raw: everyone on the initial raw plan (one class, no modulation work);
//   - split-shared: everyone pushes the same split plan — one class, one
//     interpreter run and one marshal per event, fanned N ways;
//   - split-distinct: everyone pushes the same split under a *distinct*
//     plan version — N singleton classes, so every event is modulated N
//     times: the seed's per-subscription cost, reproduced for comparison.
type FanoutConfig struct {
	// Frames is the number of events published per row.
	Frames int
	// Subs lists the subscriber counts of the fan-out curve.
	Subs []int
	// DistinctCap skips the split-distinct baseline above this subscriber
	// count (N modulations per event make it quadratic in wall-clock).
	DistinctCap int
	// FrameSize is the square image edge length.
	FrameSize int
	// QueueDepth bounds each subscription's send queue.
	QueueDepth int
}

// DefaultFanoutConfig sweeps the curve the acceptance asks for: up to ten
// thousand subscribers on the shared path, with the per-subscription
// baseline carried to one thousand.
func DefaultFanoutConfig() FanoutConfig {
	return FanoutConfig{
		Frames:      200,
		Subs:        []int{16, 100, 1000, 10000},
		DistinctCap: 1000,
		FrameSize:   32,
		QueueDepth:  64,
	}
}

// FanoutRow is one (plan mode, subscriber count) measurement.
type FanoutRow struct {
	// Plan is the plan mode ("raw", "split-shared", "split-distinct").
	Plan string
	// Subs is the subscriber count.
	Subs int
	// Classes is the live plan-class count during the run.
	Classes int
	// EventsPerSec is publish-side throughput: events accepted per second.
	EventsPerSec float64
	// PerCore is EventsPerSec divided by GOMAXPROCS — the curve's y-axis.
	PerCore float64
	// HandoffsPerSec is queue handoffs per second (events × subscribers).
	HandoffsPerSec float64
	// ModRuns is how many modulator invocations the run cost.
	ModRuns uint64
	// ModSaved is how many per-subscriber runs class sharing avoided.
	ModSaved uint64
}

// FanoutExperiment runs the fan-out sweep and returns one row per
// (mode, subscriber count) pair.
func FanoutExperiment(cfg FanoutConfig) ([]FanoutRow, error) {
	var rows []FanoutRow
	for _, mode := range []string{"raw", "split-shared", "split-distinct"} {
		for _, n := range cfg.Subs {
			if mode == "split-distinct" && cfg.DistinctCap > 0 && n > cfg.DistinctCap {
				continue
			}
			row, err := runFanoutOnce(cfg, mode, n)
			if err != nil {
				return nil, fmt.Errorf("bench: fanout %s/%d: %w", mode, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// fanoutPeer is a raw-conn subscriber: handshake, then a drain goroutine.
type fanoutPeer struct {
	conn transport.Conn
}

func dialFanoutPeer(mem *transport.Mem, addr, name string) (*fanoutPeer, error) {
	conn, err := mem.Dial(addr)
	if err != nil {
		return nil, err
	}
	hello, err := wire.Marshal(&wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: name,
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := conn.WriteFrame(hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	p := &fanoutPeer{conn: conn}
	go func() {
		for {
			if _, err := conn.ReadFrame(); err != nil {
				return
			}
		}
	}()
	return p, nil
}

func (p *fanoutPeer) pushPlan(version uint64) error {
	data, err := wire.Marshal(&wire.Plan{
		Handler: imaging.HandlerName,
		Version: version,
		Split:   []int32{1, 3},
		Profile: []int32{0, 1, 2, 3},
	})
	if err != nil {
		return err
	}
	return p.conn.WriteFrame(data)
}

func runFanoutOnce(cfg FanoutConfig, mode string, n int) (FanoutRow, error) {
	mem := transport.NewMem()
	reg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Transport:         mem,
		Builtins:          reg,
		HeartbeatInterval: -1,
		FeedbackEvery:     1 << 40, // measure fan-out, not feedback traffic
		QueueDepth:        cfg.QueueDepth,
		OverflowPolicy:    jecho.DropOldest,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return FanoutRow{}, err
	}
	defer pub.Close()

	peers := make([]*fanoutPeer, n)
	for i := range peers {
		p, err := dialFanoutPeer(mem, pub.Addr(), fmt.Sprintf("fan-%d", i))
		if err != nil {
			return FanoutRow{}, err
		}
		defer p.conn.Close()
		peers[i] = p
	}
	if err := waitCond(10*time.Second, func() bool { return pub.Subscribers() == n }); err != nil {
		return FanoutRow{}, fmt.Errorf("registration: %d of %d", pub.Subscribers(), n)
	}

	wantClasses := 1
	switch mode {
	case "split-shared":
		for _, p := range peers {
			if err := p.pushPlan(1); err != nil {
				return FanoutRow{}, err
			}
		}
	case "split-distinct":
		// A distinct version per subscriber gives every subscription its
		// own plan fingerprint and so its own singleton class: the event is
		// modulated once per subscriber, like the pre-class publisher.
		for i, p := range peers {
			if err := p.pushPlan(uint64(i + 1)); err != nil {
				return FanoutRow{}, err
			}
		}
		wantClasses = n
	}
	if mode != "raw" {
		if err := waitCond(30*time.Second, func() bool {
			if pub.PlanClasses() != wantClasses {
				return false
			}
			for _, info := range pub.Subscriptions() {
				if info.PlanVersion == 0 {
					return false
				}
			}
			return true
		}); err != nil {
			return FanoutRow{}, fmt.Errorf("plan installation: %d classes, want %d", pub.PlanClasses(), wantClasses)
		}
	}

	runs0, saved0 := pub.ModulatorRuns(), pub.ModulationsSaved()
	event := imaging.NewFrame(cfg.FrameSize, cfg.FrameSize, 1)
	start := time.Now()
	var handoffs int64
	for i := 0; i < cfg.Frames; i++ {
		reached, err := pub.Publish(event)
		if err != nil {
			return FanoutRow{}, err
		}
		handoffs += int64(reached)
	}
	dur := time.Since(start).Seconds()
	if dur <= 0 {
		dur = 1e-9
	}
	eps := float64(cfg.Frames) / dur
	return FanoutRow{
		Plan:           mode,
		Subs:           n,
		Classes:        pub.PlanClasses(),
		EventsPerSec:   eps,
		PerCore:        eps / float64(runtime.GOMAXPROCS(0)),
		HandoffsPerSec: float64(handoffs) / dur,
		ModRuns:        pub.ModulatorRuns() - runs0,
		ModSaved:       pub.ModulationsSaved() - saved0,
	}, nil
}

func waitCond(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// WriteFanout renders the fan-out sweep.
func WriteFanout(w io.Writer, rows []FanoutRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Plan,
			fmt.Sprintf("%d", r.Subs),
			fmt.Sprintf("%d", r.Classes),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.0f", r.PerCore),
			fmt.Sprintf("%.0f", r.HandoffsPerSec),
			fmt.Sprintf("%d", r.ModRuns),
			fmt.Sprintf("%d", r.ModSaved),
		})
	}
	writeTable(w, "Fan-out: plan-equivalence class sharing (publish-side throughput)",
		[]string{"plan", "subs", "classes", "events/s", "events/s/core", "handoffs/s", "mod runs", "mod saved"}, out)
}
