package costmodel

import (
	"math"

	"methodpart/internal/analysis"
	"methodpart/internal/mir"
)

// ExecTimeName is the wire name of the execution-time model.
const ExecTimeName = "exectime"

// ExecTime is the §4.2 cost model: minimize total program execution time
// when message handling is computationally expensive and computation may be
// overlapped with communication. Per the paper, when n is large the
// dominant term of eq. (3) is n·max(T_mod(1), T_demod(1)), so plan
// selection balances the per-unit load between sender and receiver.
//
// Statically, every edge's true cost depends on runtime behaviour, so all
// edges are non-deterministic; only edges with identical (alias-canonical)
// hand-over sets are deduplicated, which is why the paper's compute-bound
// handler retains a large PSE set ("21 but almost all along the same path",
// §5.3).
type ExecTime struct{}

// NewExecTime returns the execution-time model.
func NewExecTime() *ExecTime { return &ExecTime{} }

// Name implements Model.
func (*ExecTime) Name() string { return ExecTimeName }

// StaticCost implements Model. Det is zero (no static lower bound on time);
// Vars is the INTER set so that only cost-identical edges collapse.
func (*ExecTime) StaticCost(prog *mir.Program, classes *mir.ClassTable, live *analysis.Liveness) analysis.CostFunc {
	return func(e analysis.Edge, inter analysis.VarSet) analysis.CostDesc {
		return analysis.CostDesc{Vars: inter.Clone()}
	}
}

// capacityScale converts fractional milliseconds to integer capacities
// with microsecond resolution.
const capacityScale = 1000

// Capacity implements Model: the per-message time bottleneck if split at
// this PSE — max of sender compute, receiver compute and transfer time —
// weighted by path probability (microseconds).
func (*ExecTime) Capacity(stat Stat, env Environment) int64 {
	if stat.Count == 0 {
		return 1
	}
	tMod := safeDiv(stat.ModWork, env.SenderSpeed)
	tDemod := safeDiv(stat.DemodWork, env.ReceiverSpeed)
	tXfer := safeDiv(stat.Bytes, env.Bandwidth)
	bottleneck := math.Max(tMod, math.Max(tDemod, tXfer))
	c := stat.Prob * bottleneck * capacityScale
	if c < 1 || math.IsNaN(c) {
		return 1
	}
	return int64(c)
}

// StaticCapacity implements Model. With no profile every PSE looks equally
// costly; a small bias from the deterministic part keeps the choice stable.
func (*ExecTime) StaticCapacity(c analysis.CostDesc) int64 {
	return 1 + c.Det
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// ---- The analytical model of §4.2 (eqs. 1–4), used by tests and the ----
// ---- experiment harness to sanity-check measured behaviour.         ----

// SendTime is eq. (1): T_s(m) = α + β·S(m), the time to send a message of
// S units with per-message set-up α and per-unit time β.
func SendTime(alpha, beta float64, units float64) float64 {
	return alpha + beta*units
}

// NotCommBound is eq. (2): the application is not communication bound when
// α + nβ < n·max(T_p(1), T_c(1)).
func NotCommBound(alpha, beta float64, n float64, tp1, tc1 float64) bool {
	return alpha+n*beta < n*math.Max(tp1, tc1)
}

// TotalTime is eq. (3): the total pipelined execution time for n units when
// σ units are shipped per message.
func TotalTime(n float64, tMod1, tDemod1, alpha, beta, sigma float64) float64 {
	return n*math.Max(tMod1, tDemod1) + alpha + sigma*beta + sigma*math.Min(tMod1, tDemod1)
}

// MinSigma is eq. (4): the smallest admissible message size in units,
// σ > α / (max(T_mod(1), T_demod(1)) − β). Returns +Inf when the
// denominator is not positive (communication-bound regime).
func MinSigma(alpha, beta, tMod1, tDemod1 float64) float64 {
	den := math.Max(tMod1, tDemod1) - beta
	if den <= 0 {
		return math.Inf(1)
	}
	return alpha / den
}
