package wire

import (
	"bytes"
	"sync"
	"testing"
)

// TestFrameLifecycle checks the basic retain/release contract: the payload
// stays intact while any reference is held and the frame recycles only
// after the last release.
func TestFrameLifecycle(t *testing.T) {
	f := NewFrame([]byte{1, 2, 3})
	if f.Len() != 3 || !bytes.Equal(f.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("payload = %v", f.Bytes())
	}
	f.Retain(2)
	if got := f.Refs(); got != 3 {
		t.Fatalf("refs = %d, want 3", got)
	}
	f.Release()
	f.Release()
	if !bytes.Equal(f.Bytes(), []byte{1, 2, 3}) {
		t.Fatal("payload changed while a reference was held")
	}
	f.Release()
}

// TestMarshalFrameRoundTrip checks a MarshalFrame payload is byte-identical
// to Marshal of the same message.
func TestMarshalFrameRoundTrip(t *testing.T) {
	msg := &Heartbeat{Seq: 42}
	want, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := MarshalFrame(msg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatalf("MarshalFrame = %x, Marshal = %x", f.Bytes(), want)
	}
	if _, err := Unmarshal(f.Bytes()); err != nil {
		t.Fatalf("frame payload does not decode: %v", err)
	}
}

// TestFrameDoubleReleasePanics is the double-release guard: returning a
// pooled buffer twice must panic instead of silently corrupting whatever
// message the pool hands the buffer to next.
func TestFrameDoubleReleasePanics(t *testing.T) {
	f := NewFrame([]byte("x"))
	f.Retain(1)
	f.Release()
	f.Release() // refcount now 0; frame is back in the pool

	defer func() {
		if recover() == nil {
			t.Fatal("second release past zero did not panic")
		}
	}()
	f.Release()
}

// TestFrameRetainAfterReleasePanics: handing out references to a frame
// already back in the pool is the same class of bug as a double release.
func TestFrameRetainAfterReleasePanics(t *testing.T) {
	f := NewFrame([]byte("x"))
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("retain on a released frame did not panic")
		}
	}()
	f.Retain(1)
}

// TestFrameConcurrentRelease races N holders releasing their references;
// exactly one of them must recycle the frame and none may underflow.
func TestFrameConcurrentRelease(t *testing.T) {
	for round := 0; round < 100; round++ {
		const holders = 8
		f := NewFrame([]byte("payload"))
		f.Retain(holders - 1)
		var wg sync.WaitGroup
		for i := 0; i < holders; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f.Release()
			}()
		}
		wg.Wait()
	}
}
