//go:build race

package jecho

// raceDetectorEnabled reports whether this test binary was built with
// -race, which bypasses sync.Pool at random and so distorts
// testing.AllocsPerRun counts on pooled paths.
const raceDetectorEnabled = true
