package obsv

import (
	"encoding/json"
	"strings"
	"testing"
)

// testCollector emits a fixed sample set: one labelled counter, one bare
// gauge, one labelled histogram.
func testCollector() Collector {
	h := NewHistogram([]float64{0.1, 1})
	for _, v := range []float64{0.0625, 0.5, 5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	return CollectorFunc(func(emit func(Sample)) {
		emit(Sample{
			Name: "mp_test_published_total", Type: CounterType, Help: "Events published.",
			Labels: []Label{{"role", "publisher"}, {"channel", "images"}},
			Value:  42,
		})
		emit(Sample{Name: "mp_test_queue", Type: GaugeType, Help: "Queue length.", Value: 3})
		emit(Sample{
			Name: "mp_test_latency_seconds", Type: HistogramType, Help: "Latency.",
			Labels: []Label{{"sub", "s"}},
			Hist:   &snap,
		})
	})
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// families sorted by name with one HELP/TYPE header each, histograms
// expanded into cumulative buckets with a trailing +Inf, counts as
// integers and floats in shortest round-trip form.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Register(testCollector())
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP mp_test_latency_seconds Latency.
# TYPE mp_test_latency_seconds histogram
mp_test_latency_seconds_bucket{sub="s",le="0.1"} 1
mp_test_latency_seconds_bucket{sub="s",le="1"} 2
mp_test_latency_seconds_bucket{sub="s",le="+Inf"} 3
mp_test_latency_seconds_sum{sub="s"} 5.5625
mp_test_latency_seconds_count{sub="s"} 3
# HELP mp_test_published_total Events published.
# TYPE mp_test_published_total counter
mp_test_published_total{role="publisher",channel="images"} 42
# HELP mp_test_queue Queue length.
# TYPE mp_test_queue gauge
mp_test_queue 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Register(testCollector())
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Name   string            `json:"name"`
		Type   string            `json:"type"`
		Labels map[string]string `json:"labels"`
		Value  *float64          `json:"value"`
		Hist   *HistogramSnapshot
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON %q: %v", sb.String(), err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d samples, want 3", len(out))
	}
	if out[0].Name != "mp_test_latency_seconds" || out[0].Type != "histogram" || out[0].Hist == nil {
		t.Fatalf("sample 0 = %+v", out[0])
	}
	if out[0].Hist.Count != 3 {
		t.Fatalf("histogram count = %d", out[0].Hist.Count)
	}
	if out[1].Name != "mp_test_published_total" || out[1].Value == nil || *out[1].Value != 42 {
		t.Fatalf("sample 1 = %+v", out[1])
	}
	if out[1].Labels["channel"] != "images" {
		t.Fatalf("sample 1 labels = %v", out[1].Labels)
	}
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func(emit func(Sample)) {
		emit(Sample{
			Name: "mp_test_esc", Type: GaugeType, Help: "Escaping.",
			Labels: []Label{{"v", "a\"b\\c\nd"}},
			Value:  1,
		})
	}))
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `{v="a\"b\\c\nd"}`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

func TestMetricTypeString(t *testing.T) {
	for typ, want := range map[MetricType]string{
		CounterType: "counter", GaugeType: "gauge", HistogramType: "histogram", MetricType(99): "untyped",
	} {
		if got := typ.String(); got != want {
			t.Fatalf("MetricType(%d).String() = %q, want %q", typ, got, want)
		}
	}
}
