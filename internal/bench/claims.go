package bench

import "fmt"

// Claims quantifies the paper's §1 headline results from the rerun tables:
//
//   - MP "matches the performance of manually optimized implementations",
//   - "outperforms other nonoptimized manual implementations by as much as
//     223%", and
//   - under dynamics, "provides performance improvements by 22% to 305%
//     compared to implementations that cannot adapt".
type Claims struct {
	// StaticGapPct is MP's worst-case shortfall vs the best manual
	// version across static scenarios (small is good).
	StaticGapPct float64
	// BestOverNonOptimalPct is MP's largest win over a non-optimal manual
	// version in a static scenario.
	BestOverNonOptimalPct float64
	// DynamicMinPct / DynamicMaxPct bound MP's win over non-adaptive
	// versions across the dynamic (mixed / loaded) configurations.
	DynamicMinPct, DynamicMaxPct float64
}

// ComputeClaims reruns Table 2 and Table 4 and derives the claims.
func ComputeClaims(imgCfg ImageConfig, senCfg SensorConfig) (*Claims, error) {
	t2, err := Table2(imgCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: claims: %w", err)
	}
	t4, err := Table4(senCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: claims: %w", err)
	}
	cl := &Claims{DynamicMinPct: 1e18}

	var fps = map[ImageVariant][3]float64{}
	for _, r := range t2 {
		fps[r.Variant] = r.FPS
	}
	mp := fps[VariantMethodPartitioning]
	manuals := []ImageVariant{VariantImageLtDisplay, VariantImageGtDisplay}
	// Static scenarios: Small (0) and Large (1). FPS: higher is better.
	for sc := 0; sc < 2; sc++ {
		best, worst := 0.0, 1e18
		for _, v := range manuals {
			f := fps[v][sc]
			if f > best {
				best = f
			}
			if f < worst {
				worst = f
			}
		}
		if gap := (best - mp[sc]) / best * 100; gap > cl.StaticGapPct {
			cl.StaticGapPct = gap
		}
		if win := (mp[sc] - worst) / worst * 100; win > cl.BestOverNonOptimalPct {
			cl.BestOverNonOptimalPct = win
		}
	}
	// Dynamic: the mixed column, MP vs each manual version.
	for _, v := range manuals {
		win := (mp[2] - fps[v][2]) / fps[v][2] * 100
		cl.observeDynamic(win)
	}
	// Dynamic: loaded Table 4 rows (times: lower is better), MP vs the
	// non-adaptive versions.
	for _, row := range t4 {
		if row.Load.Producer == 0 && row.Load.Consumer == 0 {
			continue
		}
		mpMS := row.MS[3]
		for vi := 0; vi < 3; vi++ {
			win := (row.MS[vi] - mpMS) / mpMS * 100
			cl.observeDynamic(win)
		}
	}
	return cl, nil
}

func (c *Claims) observeDynamic(win float64) {
	if win < c.DynamicMinPct {
		c.DynamicMinPct = win
	}
	if win > c.DynamicMaxPct {
		c.DynamicMaxPct = win
	}
}
