package methodpart_test

import (
	"fmt"

	"methodpart"
)

// ExampleCompileHandler compiles the paper's push() handler and prints the
// potential split edges the static analysis discovers.
func ExampleCompileHandler() {
	src := `
class ImageData {
  width int
  height int
  buff bytes
}

func push(event) {
  z0 = instanceof event ImageData
  ifnot z0 goto done
  r2 = cast event ImageData
  r3 = new ImageData
  call initResize r3 r2
  r4 = move r3
  call displayImage r4
done:
  return
}
`
	handler, err := methodpart.CompileHandler(src, "push",
		methodpart.Natives("displayImage", "initResize"))
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	for _, pse := range handler.PSEs {
		fmt.Printf("PSE %d at %v hands over %v\n", pse.ID, pse.Edge, pse.Vars)
	}
	// Output:
	// PSE 0 at Edge(-1,0) hands over [event]
	// PSE 1 at Edge(1,7) hands over []
	// PSE 2 at Edge(2,3) hands over [r2]
}

// ExampleModulator splits a handler at a chosen PSE and shows the remote
// continuation crossing to the demodulator.
func ExampleModulator() {
	src := `
func scale(event) {
  ten = const 10
  big = mul event ten
  call report big
  return
}
`
	handler, err := methodpart.CompileHandler(src, "scale", methodpart.Natives("report"))
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	registry := func() *methodpart.Registry {
		reg := methodpart.NewRegistry()
		reg.MustRegister(methodpart.Builtin{
			Name:   "report",
			Native: true,
			Fn: func(env *methodpart.Env, args []methodpart.Value) (methodpart.Value, error) {
				fmt.Println("receiver reports:", args[0])
				return methodpart.Null{}, nil
			},
		})
		return reg
	}
	mod := methodpart.NewModulator(handler, methodpart.NewEnv(handler, registry()))
	demod := methodpart.NewDemodulator(handler, methodpart.NewEnv(handler, registry()))

	// Cut at the last PSE: the multiplication runs at the sender.
	lastPSE := int32(handler.NumPSEs()) - 1
	plan, err := methodpart.NewPlan(handler, 1, []int32{lastPSE}, nil)
	if err != nil {
		fmt.Println("plan:", err)
		return
	}
	mod.SetPlan(plan)

	out, err := mod.Process(methodpart.Int(7))
	if err != nil {
		fmt.Println("modulate:", err)
		return
	}
	fmt.Println("continuation resumes at node", out.Cont.ResumeNode)
	if _, err := demod.Process(out.Cont); err != nil {
		fmt.Println("demodulate:", err)
	}
	// Output:
	// continuation resumes at node 2
	// receiver reports: 70
}
