package partition_test

import (
	"sync"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/testprog"
)

// TestConcurrentProcessAndPlanSwaps hammers one modulator from several
// goroutines while plans flip underneath — the deployment reality of a
// publisher thread racing the reconfiguration unit. Run with -race.
func TestConcurrentProcessAndPlanSwaps(t *testing.T) {
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	oracleReg, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, oracleReg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	mod := partition.NewModulator(c, interp.NewEnv(classes, reg))
	coll := profileunit.NewCollector(c.NumPSEs())
	mod.Probe = coll

	plans := make([]*partition.Plan, 0, 3)
	for i, split := range [][]int32{{partition.RawPSEID}, {1, 2}, {1, 3}} {
		p, err := partition.NewPlan(c.NumPSEs(), uint64(i), split, partition.AllProfileIDs(c))
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}

	const (
		workers  = 4
		perW     = 200
		swappers = 2
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				out, err := mod.Process(testprog.NewImageData(8+w, 8+w))
				if err != nil {
					errs <- err
					return
				}
				if out.Raw == nil && out.Cont == nil && !out.Suppressed {
					errs <- errNoOutput
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for s := 0; s < swappers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			i := s
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Version 0 plans always install (unversioned swap).
				p, _ := partition.NewPlan(c.NumPSEs(), 0, plans[i%len(plans)].SplitIDs(), nil)
				mod.SetPlan(p)
				i++
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Wait for workers only, then release the swappers.
	for w := 0; w < workers*perW; {
		select {
		case err := <-errs:
			close(stop)
			t.Fatal(err)
		default:
		}
		if coll.Messages() >= uint64(workers*perW) {
			break
		}
		w = int(coll.Messages())
	}
	close(stop)
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if coll.Messages() != uint64(workers*perW) {
		t.Fatalf("messages = %d, want %d", coll.Messages(), workers*perW)
	}
}

var errNoOutput = errText("modulator produced no output")

type errText string

func (e errText) Error() string { return string(e) }
