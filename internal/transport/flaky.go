package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultPlan configures the deterministic fault injection of a Flaky
// transport. All randomness derives from Seed plus the connection's
// creation index, so two runs over the same traffic see the same faults.
// Faults apply to the write path (the direction the injector controls);
// reads observe their consequences — severed connections, missing frames.
type FaultPlan struct {
	// Seed roots the per-connection random streams.
	Seed int64
	// SeverEvery hard-closes the underlying connection on every Nth
	// WriteFrame (0 = never): the mid-stream link cut.
	SeverEvery int
	// SeverProb severs the connection before a write with this
	// probability per frame.
	SeverProb float64
	// DropProb blackholes a frame with this probability: the write
	// reports success but nothing reaches the peer (a lossy link).
	DropProb float64
	// DelayProb delays a frame with this probability, by a uniform
	// duration in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds injected delays (0 = 10ms when DelayProb > 0).
	MaxDelay time.Duration
	// Corrupt, when set, may rewrite a frame's payload before it is
	// written: return a replacement to poison the frame, or nil to pass it
	// through untouched. It runs after the sever/drop/delay decision, so a
	// corrupted frame is one that *does* reach the peer. The callback must
	// be safe for concurrent use and must not retain or mutate the input.
	Corrupt func(payload []byte) []byte
}

// Flaky wraps another Transport and injects faults on its connections for
// chaos testing: severed links, blackholed frames, delivery delays — all
// deterministic for a given FaultPlan.Seed and traffic pattern. SeverAll
// cuts every live connection at once, the scripted "pull the cable"
// action the chaos tests are built on.
type Flaky struct {
	inner Transport
	plan  FaultPlan

	mu    sync.Mutex
	conns map[*flakyConn]struct{}
	next  int64
}

// NewFlaky wraps inner with the given fault plan.
func NewFlaky(inner Transport, plan FaultPlan) *Flaky {
	return &Flaky{inner: inner, plan: plan, conns: make(map[*flakyConn]struct{})}
}

// Listen implements Transport; accepted connections inject faults too.
func (f *Flaky) Listen(addr string) (Listener, error) {
	ln, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{f: f, ln: ln}, nil
}

// Dial implements Transport.
func (f *Flaky) Dial(addr string) (Conn, error) {
	c, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return f.wrap(c), nil
}

func (f *Flaky) wrap(c Conn) *flakyConn {
	f.mu.Lock()
	fc := &flakyConn{
		Conn: c,
		f:    f,
		rng:  rand.New(rand.NewSource(f.plan.Seed + f.next)),
	}
	f.next++
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	return fc
}

func (f *Flaky) forget(fc *flakyConn) {
	f.mu.Lock()
	delete(f.conns, fc)
	f.mu.Unlock()
}

// SeverAll closes the underlying connection of every live wrapped conn —
// both dialed and accepted ends — and returns how many it cut. Pending
// reads and writes on them fail, exactly as if the link dropped.
func (f *Flaky) SeverAll() int {
	f.mu.Lock()
	conns := make([]*flakyConn, 0, len(f.conns))
	for fc := range f.conns {
		conns = append(conns, fc)
	}
	f.mu.Unlock()
	for _, fc := range conns {
		fc.sever()
	}
	return len(conns)
}

type flakyListener struct {
	f  *Flaky
	ln Listener
}

func (l *flakyListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.wrap(c), nil
}

func (l *flakyListener) Close() error { return l.ln.Close() }

func (l *flakyListener) Addr() string { return l.ln.Addr() }

// flakyConn injects the plan's faults into the write path of one
// connection; everything else delegates to the embedded Conn.
type flakyConn struct {
	Conn
	f *Flaky

	mu     sync.Mutex
	rng    *rand.Rand
	writes int
}

// errSevered reports a write on a connection the fault plan cut.
var errSevered = fmt.Errorf("transport: flaky: link severed")

// decide rolls this write's fate under the plan. It owns the rng so
// concurrent writers (event sender + heartbeats) stay race-free; the
// fault sequence is deterministic in the order writes arrive.
func (c *flakyConn) decide() (sever, drop bool, delay time.Duration) {
	plan := c.f.plan
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	if plan.SeverEvery > 0 && c.writes%plan.SeverEvery == 0 {
		return true, false, 0
	}
	if plan.SeverProb > 0 && c.rng.Float64() < plan.SeverProb {
		return true, false, 0
	}
	if plan.DropProb > 0 && c.rng.Float64() < plan.DropProb {
		return false, true, 0
	}
	if plan.DelayProb > 0 && c.rng.Float64() < plan.DelayProb {
		max := plan.MaxDelay
		if max <= 0 {
			max = 10 * time.Millisecond
		}
		return false, false, time.Duration(c.rng.Int63n(int64(max))) + 1
	}
	return false, false, 0
}

func (c *flakyConn) WriteFrame(payload []byte) error {
	sever, drop, delay := c.decide()
	switch {
	case sever:
		c.sever()
		return errSevered
	case drop:
		return nil
	case delay > 0:
		time.Sleep(delay)
	}
	if corrupt := c.f.plan.Corrupt; corrupt != nil {
		if poisoned := corrupt(payload); poisoned != nil {
			payload = poisoned
		}
	}
	return c.Conn.WriteFrame(payload)
}

// sever closes the underlying connection, failing the peer's reads and
// writes as a real link cut would.
func (c *flakyConn) sever() {
	_ = c.Conn.Close()
	c.f.forget(c)
}

func (c *flakyConn) Close() error {
	c.f.forget(c)
	return c.Conn.Close()
}
