package interp

import (
	"fmt"

	"methodpart/internal/mir"
)

// skind tags the representation of a value held in a slot register.
type skind uint8

const (
	// skUnset marks a register that has never been written — reads fail
	// exactly like a missing key in the stepping machine's register map.
	skUnset skind = iota
	// skInt holds an mir.Int unboxed in slot.i.
	skInt
	// skFloat holds an mir.Float unboxed in slot.f.
	skFloat
	// skBool holds an mir.Bool unboxed in slot.i (0 or 1).
	skBool
	// skBoxed holds any other value kind as an interface in slot.v.
	skBoxed
)

// slot is one dense register of a compiled machine. Ints, floats and bools
// live unboxed so arithmetic in hot loops never converts through the Value
// interface (each such conversion of an int64 outside the runtime's small
// value cache allocates). Invariant: a slot never holds an mir.Int,
// mir.Float or mir.Bool in boxed form — set is the only writer of decoded
// values and always unboxes them — so a kind test fully classifies a slot.
type slot struct {
	kind skind
	i    int64
	f    float64
	v    mir.Value
}

// set stores v, unboxing the scalar kinds. A nil value leaves the slot
// unset.
func (s *slot) set(v mir.Value) {
	switch x := v.(type) {
	case mir.Int:
		*s = slot{kind: skInt, i: int64(x)}
	case mir.Float:
		*s = slot{kind: skFloat, f: float64(x)}
	case mir.Bool:
		var i int64
		if x {
			i = 1
		}
		*s = slot{kind: skBool, i: i}
	case nil:
		*s = slot{}
	default:
		*s = slot{kind: skBoxed, v: v}
	}
}

// box returns the slot's value as an mir.Value (nil when unset). Boxing an
// int64 outside [0,255] allocates; hot paths avoid calling it.
func (s *slot) box() mir.Value {
	switch s.kind {
	case skInt:
		return mir.Int(s.i)
	case skFloat:
		return mir.Float(s.f)
	case skBool:
		return mir.Bool(s.i != 0)
	case skBoxed:
		return s.v
	default:
		return nil
	}
}

// kindOf reports the mir.Kind of the held value for diagnostics.
func (s *slot) kindOf() mir.Kind {
	switch s.kind {
	case skInt:
		return mir.KindInt
	case skFloat:
		return mir.KindFloat
	case skBool:
		return mir.KindBool
	case skBoxed:
		return s.v.Kind()
	default:
		return 0
	}
}

func (s *slot) isNum() bool { return s.kind == skInt || s.kind == skFloat }

// f64 returns the numeric value as float64; only valid when isNum.
func (s *slot) f64() float64 {
	if s.kind == skInt {
		return float64(s.i)
	}
	return s.f
}

func boolSlot(b bool) slot {
	if b {
		return slot{kind: skBool, i: 1}
	}
	return slot{kind: skBool}
}

// CodeMachine executes one invocation of a compiled program. Like the
// stepping Machine it is single-use per message, snapshots at split edges
// and restores from register snapshots; unlike it, machines are pooled —
// call Release when done so the steady state allocates nothing.
type CodeMachine struct {
	code *Code
	env  *Env
	// Hook, if set, observes watched edges and can request a split.
	Hook EdgeHook

	regs   []slot
	argBuf []mir.Value
	ret    mir.Value
	pc     int
	work   int64
	steps  int64
	limit  int64
	budget int64

	// faultPC is the instruction index errors are attributed to; every
	// lowered closure stamps it so fused superinstructions report the
	// half that actually faulted.
	faultPC int
	// noWrap marks an error already in its final form (step/work budget
	// errors raised mid-superinstruction), which Run must not wrap in the
	// per-instruction context.
	noWrap bool
}

// NewMachine prepares a pooled machine for one invocation with arguments
// bound to the program parameters.
func (c *Code) NewMachine(env *Env, args []mir.Value) (*CodeMachine, error) {
	if len(args) != len(c.prog.Params) {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d", c.prog.Name, len(c.prog.Params), len(args))
	}
	m := c.get()
	m.env = env
	for i, a := range args {
		m.regs[c.params[i]].set(a)
	}
	return m, nil
}

// Restore prepares a pooled machine that resumes at instruction index node
// with the given register values — the demodulator side of a remote
// continuation. Names the program never mentions have no slot and are
// dropped (the stepping machine keeps them, but they are unreadable there
// too).
func (c *Code) Restore(env *Env, node int, vars map[string]mir.Value) (*CodeMachine, error) {
	if node < 0 || node >= len(c.prog.Instrs) {
		return nil, fmt.Errorf("interp: resume node %d out of range for %s", node, c.prog.Name)
	}
	m := c.get()
	m.env = env
	m.pc = node
	for k, v := range vars {
		if idx, ok := c.slotOf[k]; ok {
			m.regs[idx].set(v)
		}
	}
	return m, nil
}

func (c *Code) get() *CodeMachine {
	return c.pool.Get().(*CodeMachine)
}

// Release clears the machine and returns it to its program's pool. The
// machine must not be used afterwards.
func (m *CodeMachine) Release() {
	for i := range m.regs {
		m.regs[i] = slot{}
	}
	for i := range m.argBuf {
		m.argBuf[i] = nil
	}
	m.argBuf = m.argBuf[:0]
	m.env = nil
	m.Hook = nil
	m.ret = nil
	m.pc, m.work, m.steps = 0, 0, 0
	m.limit, m.budget = 0, 0
	m.faultPC = 0
	m.noWrap = false
	m.code.pool.Put(m)
}

// SetHook installs (or clears) the edge hook. In compiled execution the
// hook observes only the watched edges given to Compile.
func (m *CodeMachine) SetHook(h EdgeHook) { m.Hook = h }

// PC returns the index of the next instruction to execute.
func (m *CodeMachine) PC() int { return m.pc }

// Work returns the work units consumed so far.
func (m *CodeMachine) Work() int64 { return m.work }

// Steps returns the instructions executed so far.
func (m *CodeMachine) Steps() int64 { return m.steps }

// Reg returns the current value of a register.
func (m *CodeMachine) Reg(name string) (mir.Value, bool) {
	idx, ok := m.code.slotOf[name]
	if !ok || m.regs[idx].kind == skUnset {
		return nil, false
	}
	return m.regs[idx].box(), true
}

// Snapshot copies the current values of the named registers — the live
// variables handed over at a split edge. Unset registers are omitted.
func (m *CodeMachine) Snapshot(names []string) map[string]mir.Value {
	out := make(map[string]mir.Value, len(names))
	for _, n := range names {
		if idx, ok := m.code.slotOf[n]; ok {
			if s := &m.regs[idx]; s.kind != skUnset {
				out[n] = s.box()
			}
		}
	}
	return out
}

// Run executes until the program returns, the hook requests a split at a
// watched edge, or a resource bound is hit. Outcomes, work and step counts,
// and error text match the stepping Machine instruction for instruction.
func (m *CodeMachine) Run() (Outcome, error) {
	m.limit = m.env.maxSteps()
	m.budget = m.env.MaxWork
	ops := m.code.ops
	pc := m.pc
	for {
		if m.steps >= m.limit {
			return Outcome{Work: m.work, Steps: m.steps}, m.stepLimitErr()
		}
		if m.budget > 0 && m.work >= m.budget {
			return Outcome{Work: m.work, Steps: m.steps}, m.workBudgetErr()
		}
		m.pc = pc
		op := &ops[pc]
		next, err := op.fn(m)
		if err != nil {
			out := Outcome{Work: m.work, Steps: m.steps}
			if m.noWrap {
				m.noWrap = false
				return out, err
			}
			in := &m.code.prog.Instrs[m.faultPC]
			return out, fmt.Errorf("interp: %s instr %d (%s): %w", m.code.prog.Name, m.faultPC, in, err)
		}
		if next < 0 { // returned
			return Outcome{Done: true, Return: m.ret, Work: m.work, Steps: m.steps}, nil
		}
		if m.Hook != nil && (next == op.w1 || next == op.w2) {
			edge := Edge{From: op.from, To: next}
			if m.Hook(edge) {
				m.pc = next
				return Outcome{Split: edge, Work: m.work, Steps: m.steps}, nil
			}
		}
		pc = next
	}
}

func (m *CodeMachine) stepLimitErr() error {
	return fmt.Errorf("%w (%d steps in %s)", ErrStepLimit, m.steps, m.code.prog.Name)
}

func (m *CodeMachine) workBudgetErr() error {
	return fmt.Errorf("%w (%d work units in %s)", ErrWorkBudget, m.work, m.code.prog.Name)
}

func (m *CodeMachine) unsetErr(idx int) error {
	return fmt.Errorf("read of unset register %q", m.code.slotNames[idx])
}

// intAt reads slot idx as an int, with the stepping machine's error text.
func (m *CodeMachine) intAt(idx int) (int64, error) {
	s := &m.regs[idx]
	if s.kind == skUnset {
		return 0, m.unsetErr(idx)
	}
	if s.kind != skInt {
		return 0, fmt.Errorf("register %q: want int, got %s", m.code.slotNames[idx], s.kindOf())
	}
	return s.i, nil
}

// objAt reads slot idx as a non-nil object.
func (m *CodeMachine) objAt(idx int) (*mir.Object, error) {
	s := &m.regs[idx]
	if s.kind == skUnset {
		return nil, m.unsetErr(idx)
	}
	if s.kind == skBoxed {
		if obj, ok := s.v.(*mir.Object); ok && obj != nil {
			return obj, nil
		}
	}
	return nil, fmt.Errorf("register %q: want object, got %s", m.code.slotNames[idx], s.kindOf())
}

// binSlow is the out-of-line tail of the arithmetic and ordering fast
// paths: numeric promotion without boxing, everything else (strings,
// division by zero, type errors) through evalBin on boxed values so error
// text is byte-identical to the stepping engine. Both-int operand pairs
// never reach it for the operators that use it — their closures handle
// that case inline — so promoting to float here cannot change int results.
func (m *CodeMachine) binSlow(fall int, bin mir.BinKind, dst, a, b int) (int, error) {
	pa, pb := &m.regs[a], &m.regs[b]
	if pa.kind == skUnset {
		return 0, m.unsetErr(a)
	}
	if pb.kind == skUnset {
		return 0, m.unsetErr(b)
	}
	if pa.isNum() && pb.isNum() {
		af, bf := pa.f64(), pb.f64()
		switch bin {
		case mir.BinAdd:
			m.regs[dst] = slot{kind: skFloat, f: af + bf}
			return fall, nil
		case mir.BinSub:
			m.regs[dst] = slot{kind: skFloat, f: af - bf}
			return fall, nil
		case mir.BinMul:
			m.regs[dst] = slot{kind: skFloat, f: af * bf}
			return fall, nil
		case mir.BinDiv:
			if bf != 0 {
				m.regs[dst] = slot{kind: skFloat, f: af / bf}
				return fall, nil
			}
			// fall through to evalBin for the exact division-by-zero error
		case mir.BinLt:
			m.regs[dst] = boolSlot(af < bf)
			return fall, nil
		case mir.BinLe:
			m.regs[dst] = boolSlot(af <= bf)
			return fall, nil
		case mir.BinGt:
			m.regs[dst] = boolSlot(af > bf)
			return fall, nil
		case mir.BinGe:
			m.regs[dst] = boolSlot(af >= bf)
			return fall, nil
		}
	}
	v, err := evalBin(bin, pa.box(), pb.box())
	if err != nil {
		return 0, err
	}
	m.regs[dst].set(v)
	return fall, nil
}

// binBoxed evaluates a binary operator entirely through evalBin — the
// fallback for equality, boolean and modulo closures.
func (m *CodeMachine) binBoxed(fall int, bin mir.BinKind, dst, a, b int) (int, error) {
	pa, pb := &m.regs[a], &m.regs[b]
	if pa.kind == skUnset {
		return 0, m.unsetErr(a)
	}
	if pb.kind == skUnset {
		return 0, m.unsetErr(b)
	}
	v, err := evalBin(bin, pa.box(), pb.box())
	if err != nil {
		return 0, err
	}
	m.regs[dst].set(v)
	return fall, nil
}

// unSlow evaluates a unary operator through evalUn.
func (m *CodeMachine) unSlow(fall int, un mir.UnKind, dst, src int) (int, error) {
	s := &m.regs[src]
	if s.kind == skUnset {
		return 0, m.unsetErr(src)
	}
	v, err := evalUn(un, s.box())
	if err != nil {
		return 0, err
	}
	m.regs[dst].set(v)
	return fall, nil
}
