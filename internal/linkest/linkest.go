// Package linkest estimates the live characteristics of one
// subscription's link — round-trip time and effective bandwidth — so the
// reconfiguration unit can price partitioning plans against the network
// that actually exists instead of the one configured at deployment time
// (§4's environment, refined at runtime).
//
// RTT comes from heartbeat echo timing (protocol revision 6): the endpoint
// records the send time of each heartbeat probe it emits and, when the
// peer reflects the probe's Seq back, subtracts it on its own clock — no
// clock synchronisation required. Effective bandwidth comes from the
// endpoint's own bytes-on-wire counter sampled over wall time: event bytes
// moved divided by the elapsed interval, skipping intervals too quiet to
// observe the link (an idle channel says nothing about capacity, so the
// estimate holds rather than decaying toward zero).
//
// Both signals feed exponentially weighted moving averages with a
// configurable half-life, behind a warm-up gate: until an axis has seen
// MinSamples samples, Environment keeps the deployment-time value for that
// axis, so a single early (possibly degenerate) measurement never swings
// the Pareto front.
package linkest

import (
	"math"
	"sync"
	"time"

	"methodpart/internal/costmodel"
)

// Defaults for the zero-value Config.
const (
	// DefaultHalfLife is the EWMA half-life: a step change in the link
	// closes half its gap to the estimate per half-life of samples.
	DefaultHalfLife = 5 * time.Second
	// DefaultMinSamples is the warm-up gate per axis.
	DefaultMinSamples = 3
	// DefaultMinBytes is the least event-byte delta a bandwidth interval
	// must move to count as an observation of the link.
	DefaultMinBytes = 4096
	// maxProbesInFlight bounds the probe table. A peer that never echoes
	// (pre-revision-6, or echoes lost) would otherwise grow it one entry
	// per heartbeat forever.
	maxProbesInFlight = 64
)

// Config tunes one estimator. The zero value uses the defaults above.
type Config struct {
	// HalfLife is the EWMA half-life for both axes (0 = DefaultHalfLife).
	HalfLife time.Duration
	// MinSamples is the warm-up gate: an axis only overrides the base
	// environment once it has this many samples (0 = DefaultMinSamples).
	MinSamples int
	// MinBytes is the smallest byte delta a bandwidth interval must carry
	// to produce a sample (0 = DefaultMinBytes; the gate keeps idle
	// intervals from reading as a dead link).
	MinBytes uint64
	// Now is the clock (nil = time.Now). Injectable for tests and for the
	// virtual-time bench harness.
	Now func() time.Time
}

// Snapshot is one estimator's public state: the smoothed estimates and how
// many samples back each, for /debug/split and metrics.
type Snapshot struct {
	// RTTMillis is the smoothed round-trip time (0 before any echo).
	RTTMillis float64
	// BandwidthBytesPerMS is the smoothed effective bandwidth (0 before
	// any interval qualified).
	BandwidthBytesPerMS float64
	// RTTSamples / BandwidthSamples count the samples behind each axis.
	RTTSamples, BandwidthSamples uint64
	// RTTWarm / BandwidthWarm report whether each axis has cleared the
	// warm-up gate and is overriding the base environment.
	RTTWarm, BandwidthWarm bool
}

// ewma is one half-life-parameterised moving average. The weight of a new
// sample depends on the time elapsed since the previous one: alpha =
// 1 − 0.5^(dt/halfLife), so bursts of samples don't converge faster in
// sample count than the half-life promises in wall time, and sparse
// samples still move the estimate meaningfully.
type ewma struct {
	value   float64
	samples uint64
	last    time.Time
}

func (e *ewma) observe(x float64, now time.Time, halfLife time.Duration) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		return // degenerate sample; never let it poison the estimate
	}
	if e.samples == 0 {
		e.value = x
	} else {
		dt := now.Sub(e.last)
		if dt <= 0 {
			dt = time.Millisecond
		}
		alpha := 1 - math.Pow(0.5, float64(dt)/float64(halfLife))
		e.value += alpha * (x - e.value)
	}
	e.samples++
	e.last = now
}

// Estimator measures one subscription's link. Safe for concurrent use: the
// send path records probes and byte counts while the read path consumes
// echoes and the publish loop snapshots.
type Estimator struct {
	mu  sync.Mutex
	cfg Config

	rtt ewma
	bw  ewma

	// probes maps in-flight heartbeat Seq to send time. Bounded: entries
	// older than maxProbesInFlight probes are dropped (their echoes, if
	// they ever arrive, are stale anyway).
	probes map[uint64]time.Time

	// lastBytes/lastAt bound the previous bandwidth sampling interval.
	lastBytes uint64
	lastAt    time.Time
	haveBytes bool
}

// New builds an estimator.
func New(cfg Config) *Estimator {
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = DefaultHalfLife
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = DefaultMinSamples
	}
	if cfg.MinBytes == 0 {
		cfg.MinBytes = DefaultMinBytes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Estimator{cfg: cfg, probes: make(map[uint64]time.Time)}
}

// Probe records the send time of heartbeat probe seq. Call just before the
// probe leaves; the matching Echo closes the sample.
func (e *Estimator) Probe(seq uint64) {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.probes[seq] = now
	// Drop the oldest entries once the table overflows. Seqs increase
	// monotonically per connection, so "oldest" is "smallest".
	for len(e.probes) > maxProbesInFlight {
		oldest := seq
		for s := range e.probes {
			if s < oldest {
				oldest = s
			}
		}
		delete(e.probes, oldest)
	}
}

// Echo consumes the peer's reflection of probe seq, converting it into one
// RTT sample. Unknown (expired or duplicate) echoes are ignored.
func (e *Estimator) Echo(seq uint64) {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	sent, ok := e.probes[seq]
	if !ok {
		return
	}
	delete(e.probes, seq)
	e.observeRTTLocked(now.Sub(sent), now)
}

// ObserveRTT feeds one round-trip sample directly — for callers that
// measure the round trip themselves (the virtual-time bench harness).
func (e *Estimator) ObserveRTT(rtt time.Duration) {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observeRTTLocked(rtt, now)
}

func (e *Estimator) observeRTTLocked(rtt time.Duration, now time.Time) {
	if rtt < 0 {
		return
	}
	e.rtt.observe(float64(rtt)/float64(time.Millisecond), now, e.cfg.HalfLife)
}

// ObserveBytes samples the cumulative event-byte counter. The delta since
// the previous call over the elapsed time is one effective-bandwidth
// sample — skipped when fewer than MinBytes moved, because an idle link is
// unobservable, not dead. The first call only anchors the interval.
func (e *Estimator) ObserveBytes(totalBytes uint64) {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.haveBytes {
		e.haveBytes = true
		e.lastBytes, e.lastAt = totalBytes, now
		return
	}
	delta := totalBytes - e.lastBytes
	elapsed := now.Sub(e.lastAt)
	if totalBytes < e.lastBytes {
		// Counter went backwards (endpoint reset); re-anchor.
		e.lastBytes, e.lastAt = totalBytes, now
		return
	}
	if delta < e.cfg.MinBytes {
		// Too quiet to observe the link. Keep lastBytes/lastAt so a slow
		// trickle eventually accumulates into a qualifying interval.
		return
	}
	if elapsed <= 0 {
		return
	}
	e.lastBytes, e.lastAt = totalBytes, now
	e.bw.observe(float64(delta)/(float64(elapsed)/float64(time.Millisecond)), now, e.cfg.HalfLife)
}

// Snapshot returns the current estimates and sample counts.
func (e *Estimator) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Snapshot{
		RTTMillis:           e.rtt.value,
		BandwidthBytesPerMS: e.bw.value,
		RTTSamples:          e.rtt.samples,
		BandwidthSamples:    e.bw.samples,
		RTTWarm:             e.rtt.samples >= uint64(e.cfg.MinSamples),
		BandwidthWarm:       e.bw.samples >= uint64(e.cfg.MinSamples),
	}
}

// Environment overlays the measured axes onto the base (deployment-time)
// environment: LatencyMS becomes RTT/2 and Bandwidth the effective
// estimate, each only once its axis has cleared the warm-up gate. The
// boolean reports whether any axis overrode the base — callers can skip
// publishing an unchanged environment.
func (e *Estimator) Environment(base costmodel.Environment) (costmodel.Environment, bool) {
	snap := e.Snapshot()
	measured := false
	if snap.RTTWarm {
		base.LatencyMS = snap.RTTMillis / 2
		measured = true
	}
	if snap.BandwidthWarm {
		base.Bandwidth = snap.BandwidthBytesPerMS
		measured = true
	}
	return base.Sanitize(), measured
}

// Reset discards all estimator state — in-flight probes, both EWMAs and
// the bandwidth interval anchor. Called on resubscribe: the fresh session
// may sit on a different path, and pre-disconnect samples must not keep
// pricing its plans.
func (e *Estimator) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rtt = ewma{}
	e.bw = ewma{}
	e.probes = make(map[uint64]time.Time)
	e.lastBytes, e.lastAt, e.haveBytes = 0, time.Time{}, false
}
