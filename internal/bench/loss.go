package bench

import (
	"fmt"
	"io"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
)

// LossConfig drives the delivery-guarantee experiment: the same
// sever-and-resume cycle run once per delivery mode, measuring what each
// contract actually delivers — and, crucially, what it *admits* to losing.
type LossConfig struct {
	// Rounds is the number of injected link cuts per scenario.
	Rounds int
	// Frames is the number of events published per phase (warmup and after
	// every cut).
	Frames int
	// FrameSize is the square image edge length.
	FrameSize int
	// Seed roots the deterministic fault randomness.
	Seed int64
	// AmpleRingBytes and TinyRingBytes are the replay-ring budgets of the
	// two at-least-once scenarios: one sized so every gap is repairable,
	// one deliberately undersized so eviction forces counted data loss.
	AmpleRingBytes int
	TinyRingBytes  int
}

// DefaultLossConfig runs each scenario in well under a second.
func DefaultLossConfig() LossConfig {
	return LossConfig{
		Rounds: 2, Frames: 60, FrameSize: 64, Seed: 1,
		AmpleRingBytes: 8 << 20, TinyRingBytes: 2048,
	}
}

// LossRow is one delivery scenario's outcome.
type LossRow struct {
	// Mode is the delivery contract under test.
	Mode string
	// RingBytes is the replay-ring budget (0 for best-effort: no ring).
	RingBytes int
	// Staged is how many events entered the delivery stream (sequence
	// numbers assigned); for best-effort it is the publish count instead.
	Staged uint64
	// Processed is how many events the handler completed (post-dedup).
	Processed uint64
	// Replayed is how many frames the publisher re-sent from its ring on
	// the final session (counters are per-connection).
	Replayed uint64
	// DataLoss is how many events were loudly declared unrecoverable.
	DataLoss uint64
	// DupsDropped is how many replay duplicates dedup absorbed before the
	// handler.
	DupsDropped uint64
	// Accounted reports the at-least-once identity
	// staged == processed + dataLoss (vacuously false for best-effort,
	// which promises no accounting).
	Accounted bool
}

// LossExperiment runs the sever/resume cycle once per delivery scenario:
// best-effort (the baseline contract: whatever dies with the link is
// silently gone), at-least-once with an ample replay ring (every gap
// repairable — exact delivery), and at-least-once with a deliberately
// undersized ring (eviction forces loss, which must surface as counted
// DataLoss, never silently). The at-least-once rows must satisfy
// staged == processed + dataLoss exactly.
func LossExperiment(cfg LossConfig) ([]LossRow, error) {
	rows := make([]LossRow, 0, 3)
	for _, sc := range []struct {
		mode jecho.Reliability
		ring int
	}{
		{jecho.BestEffort, 0},
		{jecho.AtLeastOnce, cfg.AmpleRingBytes},
		{jecho.AtLeastOnce, cfg.TinyRingBytes},
	} {
		row, err := runLossScenario(cfg, sc.mode, sc.ring)
		if err != nil {
			return nil, fmt.Errorf("bench: loss: %s ring=%d: %w", sc.mode, sc.ring, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runLossScenario(cfg LossConfig, mode jecho.Reliability, ring int) (LossRow, error) {
	flaky := transport.NewFlaky(transport.NewMem(), transport.FaultPlan{
		Seed:      cfg.Seed,
		DelayProb: 0.2,
		MaxDelay:  2 * time.Millisecond,
	})
	reg, _ := imaging.Builtins()
	ringCfg := ring
	if mode == jecho.BestEffort {
		ringCfg = -1
	}
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Transport:         flaky,
		Builtins:          reg,
		FeedbackEvery:     5,
		ReplayRingBytes:   ringCfg,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return LossRow{}, err
	}
	defer pub.Close()

	sreg, _ := imaging.Builtins()
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:              pub.Addr(),
		Transport:         flaky,
		Name:              "loss",
		Source:            imaging.HandlerSource(64),
		Handler:           imaging.HandlerName,
		CostModel:         costmodel.DataSizeName,
		Natives:           []string{"displayImage"},
		Builtins:          sreg,
		Environment:       costmodel.DefaultEnvironment(),
		Reliability:       mode,
		AckEvery:          8,
		ReconfigEvery:     5,
		Resubscribe:       true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return LossRow{}, err
	}
	defer sub.Close()

	seq := int64(0)
	published := uint64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			// Publishes into a severed session fail until the fresh one
			// registers; that is part of the scenario, not an error.
			if sent, _ := pub.Publish(imaging.NewFrame(cfg.FrameSize, cfg.FrameSize, seq)); sent > 0 {
				published++
			}
			seq++
			time.Sleep(time.Millisecond)
		}
	}
	session := func() (jecho.SubscriptionInfo, bool) {
		subs := pub.Subscriptions()
		if len(subs) != 1 {
			return jecho.SubscriptionInfo{}, false
		}
		return subs[0], true
	}

	publish(cfg.Frames)
	for round := 1; round <= cfg.Rounds; round++ {
		before, ok := session()
		if !ok {
			return LossRow{}, fmt.Errorf("no session before round %d", round)
		}
		flaky.SeverAll()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if info, ok := session(); ok && info.ID != before.ID {
				break
			}
			if time.Now().After(deadline) {
				return LossRow{}, fmt.Errorf("round %d: no recovery", round)
			}
			time.Sleep(time.Millisecond)
		}
		publish(cfg.Frames)
	}

	// Convergence: at-least-once must account for every staged event;
	// best-effort only has to still be draining.
	deadline := time.Now().Add(15 * time.Second)
	var info jecho.SubscriptionInfo
	for {
		var ok bool
		info, ok = session()
		if ok {
			if mode == jecho.BestEffort {
				break
			}
			if info.StagedSeq == sub.Processed()+sub.Metrics().DataLoss {
				break
			}
		}
		if time.Now().After(deadline) {
			return LossRow{}, fmt.Errorf("delivery never converged: staged=%d processed=%d loss=%d",
				info.StagedSeq, sub.Processed(), sub.Metrics().DataLoss)
		}
		time.Sleep(time.Millisecond)
	}

	m := sub.Metrics()
	row := LossRow{
		Mode:        mode.String(),
		RingBytes:   ring,
		Staged:      info.StagedSeq,
		Processed:   sub.Processed(),
		Replayed:    info.Metrics.Replayed,
		DataLoss:    m.DataLoss,
		DupsDropped: m.DuplicatesDropped,
	}
	if mode == jecho.BestEffort {
		row.Staged = published
	} else {
		row.Accounted = row.Staged == row.Processed+row.DataLoss
	}
	return row, nil
}

// WriteLoss renders the delivery-guarantee experiment.
func WriteLoss(w io.Writer, rows []LossRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Mode,
			fmt.Sprintf("%d", r.RingBytes),
			fmt.Sprintf("%d", r.Staged),
			fmt.Sprintf("%d", r.Processed),
			fmt.Sprintf("%d", r.Replayed),
			fmt.Sprintf("%d", r.DataLoss),
			fmt.Sprintf("%d", r.DupsDropped),
			fmt.Sprintf("%v", r.Accounted),
		})
	}
	writeTable(w, "Delivery guarantees: link cuts under best-effort vs at-least-once (flaky mem transport)",
		[]string{"mode", "ringBytes", "staged", "processed", "replayed", "dataLoss", "dupsDropped", "accounted"},
		out)
}
