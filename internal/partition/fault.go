package partition

import (
	"errors"
	"fmt"
	"runtime/debug"

	"methodpart/internal/mir/interp"
	"methodpart/internal/wire"
)

// Fault is an error from modulation or demodulation carrying the wire-level
// failure class, so endpoints can attribute it (NACK frames, breaker
// accounting, dead-letter records) without string matching.
type Fault struct {
	// Class is the protocol error class reported upstream in a Nack.
	Class wire.NackClass
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (f *Fault) Error() string { return f.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// FaultClassOf extracts the failure class from an error returned by
// Modulator.Process or the Demodulator Process methods. Errors without an
// explicit class default to NackRuntime — the conservative attribution for
// "the handler itself misbehaved".
func FaultClassOf(err error) wire.NackClass {
	var f *Fault
	if errors.As(err, &f) {
		return f.Class
	}
	return wire.NackRuntime
}

// faultf wraps a fresh error with a class.
func faultf(class wire.NackClass, format string, args ...any) error {
	return &Fault{Class: class, Err: fmt.Errorf(format, args...)}
}

// classify wraps an existing error with the class its cause implies:
// interpreter resource-limit errors are budget faults, everything else from
// the machine is a runtime fault. Already-classified errors pass through.
func classify(class wire.NackClass, err error) error {
	if err == nil {
		return nil
	}
	var f *Fault
	if errors.As(err, &f) {
		return err
	}
	if errors.Is(err, interp.ErrStepLimit) || errors.Is(err, interp.ErrWorkBudget) {
		class = wire.NackBudget
	}
	return &Fault{Class: class, Err: err}
}

// recoverFault converts a panic escaping interpreter-driven code into a
// classified runtime fault, so one poisoned event cannot kill the read loop
// or publish path that invoked it. Use as `defer recoverFault(&err)` on a
// named error return.
func recoverFault(errp *error) {
	if r := recover(); r != nil {
		*errp = &Fault{
			Class: wire.NackRuntime,
			Err:   fmt.Errorf("partition: panic during split execution: %v\n%s", r, debug.Stack()),
		}
	}
}
