package partition_test

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
)

// TestRichHandlerThreeChoices compiles the resize-and/or-downsample handler
// and checks the PSE ladder offers the three §1 trade-offs: ship original,
// ship the downsampled intermediate, or ship the display-sized final image.
// The optimizer must pick per incoming size: big frames → full reduction at
// the sender; mid frames → downsample at the sender, resize at the
// receiver; tiny frames → ship raw.
func TestRichHandlerThreeChoices(t *testing.T) {
	const display = 100
	unit := imaging.RichHandlerUnit(display)
	prog, _ := unit.Program(imaging.RichHandlerName)
	classes, err := unit.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	oracleReg, _ := imaging.Builtins()
	c, err := partition.Compile(prog, classes, oracleReg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}

	// Identify the PSE ladder by resume node: pre-downsample, between the
	// transforms, and post-resize.
	downIdx, resizeIdx := -1, -1
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op == mir.OpCall && in.Fn == "downsample" {
			downIdx = i
		}
		if in.Op == mir.OpCall && in.Fn == "resizeTo" {
			resizeIdx = i
		}
	}
	if downIdx < 0 || resizeIdx < 0 || downIdx >= resizeIdx {
		t.Fatalf("transform layout: downsample@%d resizeTo@%d", downIdx, resizeIdx)
	}
	var pre, mid, post int32 = -1, -1, -1
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if len(p.Vars) == 0 {
			continue
		}
		switch {
		case p.Edge.To <= downIdx:
			pre = id
		case p.Edge.To > downIdx && p.Edge.To <= resizeIdx:
			mid = id
		case p.Edge.From >= resizeIdx:
			post = id
		}
	}
	if pre < 0 || mid < 0 || post < 0 {
		t.Fatalf("PSE ladder incomplete (pre=%d mid=%d post=%d): %+v", pre, mid, post, c.PSEs)
	}

	// Closed loop: modulate/demodulate frames of one size and let the
	// reconfiguration unit converge; report the steady-state split.
	converge := func(size int) int32 {
		sendReg, _ := imaging.Builtins()
		recvReg, _ := imaging.Builtins()
		mod := partition.NewModulator(c, interp.NewEnv(classes, sendReg))
		demod := partition.NewDemodulator(c, interp.NewEnv(classes, recvReg))
		coll := profileunit.NewCollector(c.NumPSEs())
		mod.Probe = coll
		demod.Probe = coll
		demod.CrossProbe = coll
		unit := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
		plan, _, err := unit.InitialPlan()
		if err != nil {
			t.Fatal(err)
		}
		mod.SetPlan(plan)
		demod.SetProfilePlan(plan)
		var last int32
		for i := 0; i < 15; i++ {
			out, err := mod.Process(imaging.NewFrame(size, size, int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			var msg any = out.Raw
			if out.Cont != nil {
				msg = out.Cont
			}
			if _, err := demod.Process(msg); err != nil {
				t.Fatal(err)
			}
			last = out.SplitPSE
			newPlan, _, err := unit.SelectPlan(coll.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			mod.SetPlan(newPlan)
			demod.SetProfilePlan(newPlan)
		}
		return last
	}

	// 400x400: raw 160000B, after downsample 40000B, after resize 10000B
	// → cut post-resize.
	if got := converge(400); got != post {
		t.Errorf("large frames: converged to PSE %d, want post-resize %d", got, post)
	}
	// 150x150: raw 22500B, downsampled 75x75 = 5625B, resized 10000B
	// → cut after the downsample, resize at the receiver.
	if got := converge(150); got != mid {
		t.Errorf("mid frames: converged to PSE %d, want mid %d", got, mid)
	}
	// 60x60: raw 3600B beats downsampled-then-upscaled sizes
	// (30x30=900B is smaller! so mid wins there too). Use a frame whose
	// downsample gains nothing: 2x2.
	small := converge(2)
	if small == post {
		t.Errorf("tiny frames: converged to post-resize (%d), which ships the largest payload", small)
	}
}
