package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// PoisonConfig drives the poison-PSE experiment: a channel converges on its
// optimal split, then the transport starts corrupting every continuation
// produced at that split edge so demodulation always fails. The experiment
// measures the fault-containment loop end to end — NACKs flow upstream, the
// publisher's breaker trips, the failure-aware min-cut routes around the
// poisoned PSE — and how long the channel takes to return to healthy
// throughput without either endpoint restarting.
type PoisonConfig struct {
	// Frames is the number of events published per phase (convergence,
	// poisoning, recovery).
	Frames int
	// FrameSize is the square image edge length; large frames make a
	// non-raw split optimal, giving the experiment a PSE worth poisoning.
	FrameSize int
	// Threshold is the breaker threshold on both endpoints (0 = default).
	Threshold int
	// Seed roots the deterministic fault randomness.
	Seed int64
}

// DefaultPoisonConfig converges and recovers in well under a second.
func DefaultPoisonConfig() PoisonConfig {
	return PoisonConfig{Frames: 120, FrameSize: 200, Threshold: 3, Seed: 1}
}

// PoisonRow is the experiment's outcome.
type PoisonRow struct {
	// TargetPSE is the split edge whose continuations were poisoned.
	TargetPSE int32
	// SplitBefore and SplitAfter are the publisher's active split sets on
	// either side of the poisoning.
	SplitBefore string
	SplitAfter  string
	// Poisoned counts frames the transport corrupted.
	Poisoned uint64
	// NacksSent / NacksRecv are the failure reports counted at the
	// subscriber and publisher ends.
	NacksSent uint64
	NacksRecv uint64
	// DeadLettered counts messages quarantined at the subscriber.
	DeadLettered uint64
	// BreakerTrips counts publisher-side breaker transitions to open.
	BreakerTrips uint64
	// RecoverMS is the time from the first poisoned frame until the
	// publisher's active plan excluded the target PSE.
	RecoverMS float64
	// HealthyAfter reports that, with the degraded plan active, events
	// flowed end to end again (processed count grew with no new NACKs).
	HealthyAfter bool
}

// PoisonExperiment runs the poison-PSE scenario on a flaky mem transport.
func PoisonExperiment(cfg PoisonConfig) (*PoisonRow, error) {
	// target is the PSE whose continuations the transport corrupts;
	// negative while poisoning is inactive. While inactive the hook still
	// records which PSEs carry continuation traffic, so the experiment can
	// poison an edge events actually cross (a multi-edge split set covers
	// alternative paths; only some see traffic). poisoned counts
	// corruptions.
	var target atomic.Int32
	var poisoned atomic.Uint64
	target.Store(-1)
	var seenMu sync.Mutex
	seen := make(map[int32]uint64)
	plan := transport.FaultPlan{
		Seed: cfg.Seed,
		// Corrupt rewrites continuations split at the target PSE so their
		// resume node is out of range: demodulation fails with an
		// attributable restore fault while the frame itself stays
		// decodable (PSE id and sequence number intact).
		Corrupt: func(payload []byte) []byte {
			msg, err := wire.Unmarshal(payload)
			if err != nil {
				return nil
			}
			cont, ok := msg.(*wire.Continuation)
			if !ok {
				return nil
			}
			seenMu.Lock()
			seen[cont.PSEID]++
			seenMu.Unlock()
			t := target.Load()
			if t < 0 || cont.PSEID != t {
				return nil
			}
			cont.ResumeNode = 1 << 20
			data, err := wire.Marshal(cont)
			if err != nil {
				return nil
			}
			poisoned.Add(1)
			return data
		},
	}
	flaky := transport.NewFlaky(transport.NewMem(), plan)
	reg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Transport:         flaky,
		Builtins:          reg,
		FeedbackEvery:     5,
		BreakerThreshold:  cfg.Threshold,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer pub.Close()

	sreg, _ := imaging.Builtins()
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:              pub.Addr(),
		Transport:         flaky,
		Name:              "poison",
		Source:            imaging.HandlerSource(64),
		Handler:           imaging.HandlerName,
		CostModel:         costmodel.DataSizeName,
		Natives:           []string{"displayImage"},
		Builtins:          sreg,
		Environment:       costmodel.DefaultEnvironment(),
		ReconfigEvery:     5,
		BreakerThreshold:  cfg.Threshold,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer sub.Close()

	seq := int64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			_, _ = pub.Publish(imaging.NewFrame(cfg.FrameSize, cfg.FrameSize, seq))
			seq++
			time.Sleep(time.Millisecond)
		}
	}
	session := func() (jecho.SubscriptionInfo, bool) {
		subs := pub.Subscriptions()
		if len(subs) != 1 {
			return jecho.SubscriptionInfo{}, false
		}
		return subs[0], true
	}

	// Phase 1: converge on the profiled optimum.
	publish(cfg.Frames)
	before, ok := session()
	if !ok {
		return nil, fmt.Errorf("bench: poison: no session after convergence")
	}
	// Poison the split edge that carries the continuation traffic: the
	// busiest PSE the corrupt hook observed during convergence.
	var t int32 = -1
	var most uint64
	seenMu.Lock()
	for id, n := range seen {
		if n > most {
			t, most = id, n
		}
	}
	seenMu.Unlock()
	if t < 0 {
		return nil, fmt.Errorf("bench: poison: no continuation traffic after convergence (split %v)", before.SplitIDs)
	}

	// Phase 2: poison the active split edge and publish until the
	// publisher's plan routes around it.
	target.Store(t)
	start := time.Now()
	deadline := start.Add(10 * time.Second)
	recovered := false
	for !recovered {
		publish(5)
		if info, ok := session(); ok && !splitContains(info.SplitIDs, t) {
			recovered = true
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: poison: plan still selects pse %d after %v", t, time.Since(start))
		}
	}
	recoverMS := float64(time.Since(start).Microseconds()) / 1000

	// Phase 3: with the degraded plan active, throughput must return and
	// the NACK stream must stop. Give residual poisoned frames queued
	// under the old plan a moment to drain before baselining.
	time.Sleep(50 * time.Millisecond)
	processedAt := sub.Processed()
	nacksAt := sub.Metrics().NacksSent
	publish(cfg.Frames)
	healthy := sub.Processed() > processedAt && sub.Metrics().NacksSent == nacksAt

	after, _ := session()
	pm := after.Metrics
	sm := sub.Metrics()
	return &PoisonRow{
		TargetPSE:    t,
		SplitBefore:  fmt.Sprintf("%v", before.SplitIDs),
		SplitAfter:   fmt.Sprintf("%v", after.SplitIDs),
		Poisoned:     poisoned.Load(),
		NacksSent:    sm.NacksSent,
		NacksRecv:    pm.NacksReceived,
		DeadLettered: sm.DeadLettered,
		BreakerTrips: pm.BreakerTrips,
		RecoverMS:    recoverMS,
		HealthyAfter: healthy,
	}, nil
}

// splitContains reports whether the split set includes the PSE.
func splitContains(split []int32, id int32) bool {
	for _, s := range split {
		if s == id {
			return true
		}
	}
	return false
}

// WritePoison renders the poison-PSE experiment.
func WritePoison(w io.Writer, r *PoisonRow) {
	writeTable(w, "Poison PSE: NACK/breaker fault containment (flaky mem transport)",
		[]string{"targetPSE", "splitBefore", "splitAfter", "poisoned", "nacksSent", "nacksRecv", "deadLettered", "trips", "recoverMS", "healthyAfter"},
		[][]string{{
			fmt.Sprintf("%d", r.TargetPSE),
			r.SplitBefore, r.SplitAfter,
			fmt.Sprintf("%d", r.Poisoned),
			fmt.Sprintf("%d", r.NacksSent),
			fmt.Sprintf("%d", r.NacksRecv),
			fmt.Sprintf("%d", r.DeadLettered),
			fmt.Sprintf("%d", r.BreakerTrips),
			fmt.Sprintf("%.1f", r.RecoverMS),
			fmt.Sprintf("%v", r.HealthyAfter),
		}})
}
