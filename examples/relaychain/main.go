// Relaychain: three-way Method Partitioning (the paper's §7 extension of
// propagating modulators along a data stream). A sensor handler runs in
// three pieces — sensor node, edge relay, and consumer — with each hop's
// plan chosen independently. Mid-run the relay is reconfigured to absorb
// more of the chain, visibly shifting work off the consumer.
package main

import (
	"fmt"
	"log"

	"methodpart"
	"methodpart/internal/sensor"
)

const stages = 12

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	handler, err := methodpart.CompileHandler(sensor.HandlerSource(stages), sensor.HandlerName,
		methodpart.Natives("deliver"),
		methodpart.WithModel(methodpart.ExecTimeModel()),
	)
	if err != nil {
		return err
	}

	mkEnv := func() (*methodpart.Env, *sensor.Sink) {
		reg, sink := sensor.Builtins(stages)
		return methodpart.NewEnv(handler, reg), sink
	}
	sensorEnv, _ := mkEnv()
	relayEnv, _ := mkEnv()
	consumerEnv, sink := mkEnv()

	mod := methodpart.NewModulator(handler, sensorEnv)
	relay := methodpart.NewRelay(handler, relayEnv)
	demod := methodpart.NewDemodulator(handler, consumerEnv)

	// Locate the PSE that cuts after stage k (the stage-k call sits at
	// instruction 3+k).
	stageCut := func(k int) int32 {
		for id := int32(1); id < int32(handler.NumPSEs()); id++ {
			pse := handler.PSEs[id]
			if pse.Edge.From == 3+k && pse.Edge.To == 4+k && len(pse.Vars) > 0 {
				return id
			}
		}
		return -1
	}
	filter := int32(-1)
	for id := int32(1); id < int32(handler.NumPSEs()); id++ {
		if len(handler.PSEs[id].Vars) == 0 {
			filter = id
		}
	}

	setPlans := func(sensorStages, relayStages int, version uint64) error {
		mp, err := methodpart.NewPlan(handler, version, []int32{stageCut(sensorStages), filter}, nil)
		if err != nil {
			return err
		}
		mod.SetPlan(mp)
		rp, err := methodpart.NewPlan(handler, version, []int32{stageCut(sensorStages + relayStages), filter}, nil)
		if err != nil {
			return err
		}
		relay.SetPlan(rp)
		return nil
	}

	// Phase 1: sensor 1..4, relay 5..8, consumer 9..12.
	if err := setPlans(4, 4, 1); err != nil {
		return err
	}
	fmt.Println("phase 1: sensor does stages 1-4, relay 5-8, consumer 9-12")
	if err := stream(mod, relay, demod, 5, 0); err != nil {
		return err
	}

	// Phase 2: the consumer is struggling — the relay absorbs more.
	if err := setPlans(4, 7, 2); err != nil {
		return err
	}
	fmt.Println("\nphase 2: consumer overloaded; relay now runs stages 5-11")
	if err := stream(mod, relay, demod, 5, 5); err != nil {
		return err
	}

	fmt.Printf("\ntotal frames delivered at the consumer sink: %d\n", len(sink.Outputs))
	return nil
}

func stream(mod *methodpart.Modulator, relay *methodpart.Relay, demod *methodpart.Demodulator, frames int, from int) error {
	for i := 0; i < frames; i++ {
		out1, err := mod.Process(sensor.NewFrame(int64(from+i), 2000))
		if err != nil {
			return err
		}
		out2, err := relay.Process(message(out1))
		if err != nil {
			return err
		}
		res, err := demod.Process(message(out2))
		if err != nil {
			return err
		}
		fmt.Printf("  frame %d: sensor %6d units -> relay %6d units -> consumer %6d units (resume %d then %d)\n",
			from+i, out1.ModWork, out2.ModWork, res.DemodWork,
			out1.Cont.ResumeNode, out2.Cont.ResumeNode)
	}
	return nil
}

func message(out *methodpart.ModulatorOutput) any {
	if out.Raw != nil {
		return out.Raw
	}
	return out.Cont
}
