package bench

import "testing"

// TestRichImageShape: with three frame-size classes no fixed cut wins; the
// adaptive implementation must beat every fixed version and ship the fewest
// bytes per frame.
func TestRichImageShape(t *testing.T) {
	cfg := DefaultImageConfig()
	cfg.Frames = 200
	rows, err := RichImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RichImageRow{}
	for _, r := range rows {
		byName[r.Name] = r
		t.Logf("%-20s fps=%6.2f kb/frame=%5.1f", r.Name, r.FPS, r.KBPerFrame)
	}
	mp := byName["Method Partitioning"]
	for name, r := range byName {
		if name == "Method Partitioning" {
			continue
		}
		if mp.FPS <= r.FPS {
			t.Errorf("MP (%.2f fps) does not beat %s (%.2f fps)", mp.FPS, name, r.FPS)
		}
		if mp.KBPerFrame > r.KBPerFrame*1.01 {
			t.Errorf("MP ships more bytes (%.1f) than %s (%.1f)", mp.KBPerFrame, name, r.KBPerFrame)
		}
	}
	// Shipping raw 400x400 frames must be the clear loser.
	if byName["Ship Raw"].FPS >= byName["Downsample@Sender"].FPS {
		t.Error("ship-raw should lose to downsample-at-sender on this link")
	}
}
