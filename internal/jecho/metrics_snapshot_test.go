package jecho

import (
	"sync"
	"testing"
)

// TestMetricsSnapshotStabilises: quiescent counters must snapshot exactly,
// and a snapshot taken under concurrent updates must never run backwards
// against an earlier one (tearing would show as a counter losing
// increments between reads).
func TestMetricsSnapshotStabilises(t *testing.T) {
	var m channelMetrics
	m.published.Store(10)
	m.suppressed.Store(3)
	m.bytesOnWire.Store(4096)
	s := m.snapshot()
	if s.Published != 10 || s.Suppressed != 3 || s.BytesOnWire != 4096 {
		t.Fatalf("quiescent snapshot = %+v", s)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.published.Add(1)
				m.enqueued.Add(1)
				m.bytesOnWire.Add(100)
			}
		}
	}()
	prev := m.snapshot()
	for i := 0; i < 1000; i++ {
		cur := m.snapshot()
		if cur.Published < prev.Published || cur.Enqueued < prev.Enqueued || cur.BytesOnWire < prev.BytesOnWire {
			t.Fatalf("snapshot ran backwards: %+v then %+v", prev, cur)
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
	final := m.snapshot()
	if again := m.snapshot(); again != final {
		t.Fatalf("quiescent snapshots disagree: %+v vs %+v", final, again)
	}
}
