package interp

import (
	"errors"
	"strings"
	"testing"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
)

func envFor(t *testing.T, u *asm.Unit) *Env {
	t.Helper()
	tbl, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(tbl, NewRegistry())
}

func run(t *testing.T, src, fn string, args ...mir.Value) (Outcome, *Machine) {
	t.Helper()
	u := asm.MustParse(src)
	env := envFor(t, u)
	prog, ok := u.Program(fn)
	if !ok {
		t.Fatalf("program %s missing", fn)
	}
	m, err := NewMachine(env, prog, args)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

func TestArithmetic(t *testing.T) {
	out, _ := run(t, `
func f(a, b) {
  s = add a b
  d = sub a b
  p = mul a b
  q = div a b
  r = mod a b
  t0 = mul p q
  t1 = add t0 r
  t2 = add t1 s
  t3 = add t2 d
  return t3
}
`, "f", mir.Int(17), mir.Int(5))
	// s=22 d=12 p=85 q=3 r=2; 85*3+2+22+12 = 291
	if out.Return != mir.Int(291) {
		t.Fatalf("return = %v, want 291", out.Return)
	}
}

func TestFloatPromotion(t *testing.T) {
	out, _ := run(t, `
func f(a, b) {
  s = add a b
  return s
}
`, "f", mir.Int(1), mir.Float(0.5))
	if out.Return != mir.Float(1.5) {
		t.Fatalf("return = %v, want 1.5", out.Return)
	}
}

func TestStringConcat(t *testing.T) {
	out, _ := run(t, `
func f(a, b) {
  s = add a b
  return s
}
`, "f", mir.Str("foo"), mir.Str("bar"))
	if out.Return != mir.Str("foobar") {
		t.Fatalf("return = %v", out.Return)
	}
}

func TestLoopAndArrays(t *testing.T) {
	out, _ := run(t, `
func sum(arr) {
  n = len arr
  i = const 0
  acc = const 0
loop:
  done = ge i n
  if done goto finish
  v = arrget arr i
  acc = add acc v
  one = const 1
  i = add i one
  goto loop
finish:
  return acc
}
`, "sum", mir.IntArray{1, 2, 3, 4, 5})
	if out.Return != mir.Int(15) {
		t.Fatalf("sum = %v, want 15", out.Return)
	}
}

func TestObjectsAndFields(t *testing.T) {
	out, _ := run(t, `
class Point {
  x int
  y int
}

func f(a) {
  p = new Point
  setfield p x a
  two = const 2
  setfield p y two
  gx = getfield p x
  gy = getfield p y
  s = add gx gy
  return s
}
`, "f", mir.Int(40))
	if out.Return != mir.Int(42) {
		t.Fatalf("return = %v, want 42", out.Return)
	}
}

func TestInstanceOfAndCast(t *testing.T) {
	src := `
class A {
  v int
}

func f(x) {
  is = instanceof x A
  ifnot is goto no
  a = cast x A
  v = getfield a v
  return v
no:
  zero = const 0
  return zero
}
`
	obj := mir.NewObject("A")
	obj.Fields["v"] = mir.Int(9)
	out, _ := run(t, src, "f", mir.Value(obj))
	if out.Return != mir.Int(9) {
		t.Fatalf("cast path = %v, want 9", out.Return)
	}
	out, _ = run(t, src, "f", mir.Int(3))
	if out.Return != mir.Int(0) {
		t.Fatalf("filter path = %v, want 0", out.Return)
	}
}

func TestBadCastFails(t *testing.T) {
	u := asm.MustParse(`
class A {
  v int
}

func f(x) {
  a = cast x A
  return a
}
`)
	env := envFor(t, u)
	prog, _ := u.Program("f")
	m, err := NewMachine(env, prog, []mir.Value{mir.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "cannot cast") {
		t.Fatalf("err = %v, want cast failure", err)
	}
}

func TestNewArrayKinds(t *testing.T) {
	out, _ := run(t, `
func f(n) {
  a = newarray int n
  b = newarray float n
  c = newarray bytes n
  la = len a
  lb = len b
  lc = len c
  s = add la lb
  s = add s lc
  return s
}
`, "f", mir.Int(4))
	if out.Return != mir.Int(12) {
		t.Fatalf("return = %v, want 12", out.Return)
	}
}

func TestGlobals(t *testing.T) {
	u := asm.MustParse(`
func f(x) {
  setglobal counter x
  y = getglobal counter
  return y
}
`)
	env := envFor(t, u)
	prog, _ := u.Program("f")
	m, err := NewMachine(env, prog, []mir.Value{mir.Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Return != mir.Int(5) {
		t.Fatalf("return = %v", out.Return)
	}
	if env.Globals["counter"] != mir.Int(5) {
		t.Fatalf("global = %v", env.Globals["counter"])
	}
}

func TestBuiltinCallAndCost(t *testing.T) {
	u := asm.MustParse(`
func f(x) {
  y = call double x
  return y
}
`)
	tbl, _ := u.ClassTable()
	reg := NewRegistry()
	reg.MustRegister(Builtin{
		Name: "double",
		Fn: func(env *Env, args []mir.Value) (mir.Value, error) {
			return args[0].(mir.Int) * 2, nil
		},
		Cost: func(args []mir.Value) int64 { return 100 },
	})
	env := NewEnv(tbl, reg)
	prog, _ := u.Program("f")
	m, err := NewMachine(env, prog, []mir.Value{mir.Int(21)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Return != mir.Int(42) {
		t.Fatalf("return = %v", out.Return)
	}
	// 2 instructions (base cost 1 each) + builtin cost 100.
	if out.Work != 102 {
		t.Fatalf("work = %d, want 102", out.Work)
	}
}

func TestUnknownBuiltin(t *testing.T) {
	u := asm.MustParse(`
func f(x) {
  y = call nope x
  return y
}
`)
	env := envFor(t, u)
	prog, _ := u.Program("f")
	m, _ := NewMachine(env, prog, []mir.Value{mir.Int(1)})
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "unknown builtin") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	u := asm.MustParse(`
func spin(x) {
loop:
  goto loop
}
`)
	env := envFor(t, u)
	env.MaxSteps = 1000
	prog, _ := u.Program("spin")
	m, _ := NewMachine(env, prog, []mir.Value{mir.Int(0)})
	_, err := m.Run()
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	u := asm.MustParse(`
func f(a, b) {
  q = div a b
  return q
}
`)
	env := envFor(t, u)
	prog, _ := u.Program("f")
	m, _ := NewMachine(env, prog, []mir.Value{mir.Int(1), mir.Int(0)})
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitAndRestore(t *testing.T) {
	// The remote-continuation mechanics: stop at an edge, snapshot, resume
	// in a fresh machine, and get the same answer as an unsplit run.
	src := `
func f(a) {
  ten = const 10
  b = mul a ten
  c = add b a
  d = mul c c
  return d
}
`
	u := asm.MustParse(src)
	env := envFor(t, u)
	prog, _ := u.Program("f")

	whole, err := NewMachine(env, prog, []mir.Value{mir.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	wout, err := whole.Run()
	if err != nil {
		t.Fatal(err)
	}

	for splitAt := 1; splitAt < len(prog.Instrs); splitAt++ {
		m, err := NewMachine(env, prog, []mir.Value{mir.Int(3)})
		if err != nil {
			t.Fatal(err)
		}
		target := splitAt
		m.Hook = func(e Edge) bool { return e.To == target }
		out, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.Done {
			t.Fatalf("split at %d: ran to completion", splitAt)
		}
		snap := m.Snapshot(prog.Registers())
		resumed, err := Restore(env, prog, out.Split.To, snap)
		if err != nil {
			t.Fatal(err)
		}
		rout, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !mir.Equal(rout.Return, wout.Return) {
			t.Errorf("split at %d: return %v, want %v", splitAt, rout.Return, wout.Return)
		}
		if out.Work+rout.Work != wout.Work {
			t.Errorf("split at %d: work %d+%d != %d", splitAt, out.Work, rout.Work, wout.Work)
		}
	}
}

func TestRestoreRejectsBadNode(t *testing.T) {
	u := asm.MustParse("func f(x) {\n return x\n}")
	env := envFor(t, u)
	prog, _ := u.Program("f")
	if _, err := Restore(env, prog, 99, nil); err == nil {
		t.Fatal("Restore accepted out-of-range node")
	}
}

func TestRegistryNativeOracle(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Builtin{Name: "soft", Fn: func(*Env, []mir.Value) (mir.Value, error) { return mir.Null{}, nil }})
	reg.MustRegister(Builtin{Name: "hard", Native: true, Fn: func(*Env, []mir.Value) (mir.Value, error) { return mir.Null{}, nil }})
	if reg.IsNative("soft") {
		t.Error("soft reported native")
	}
	if !reg.IsNative("hard") {
		t.Error("hard not reported native")
	}
	if !reg.IsNative("unknown") {
		t.Error("unknown functions must be conservatively native")
	}
	if err := reg.Register(Builtin{Name: "soft", Fn: func(*Env, []mir.Value) (mir.Value, error) { return nil, nil }}); err == nil {
		t.Error("duplicate registration accepted")
	}
}
