package jecho

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/linkest"
	"methodpart/internal/mir/interp"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// SubscriberConfig configures a subscription to a remote publisher.
type SubscriberConfig struct {
	// Addr is the publisher's address in the transport's notation.
	Addr string
	// Transport carries the subscription (nil = TCP). It must match the
	// publisher's transport.
	Transport transport.Transport
	// Name identifies this subscriber.
	Name string
	// Channel names the event channel to attach to ("" = default;
	// Publisher.Publish broadcasts reach every channel either way).
	Channel string
	// Source is the handler source (classes + func) to install.
	Source string
	// Handler is the handler name inside Source.
	Handler string
	// CostModel is the wire name of the cost model ("datasize",
	// "exectime").
	CostModel string
	// Natives lists the receiver-pinned functions of the handler.
	Natives []string
	// Builtins is the receiver-side registry (must implement all
	// handler functions, including the natives).
	Builtins *interp.Registry
	// Environment is the deployment-time resource estimate for the
	// reconfiguration unit.
	Environment costmodel.Environment
	// OnResult, if set, observes every completed message.
	OnResult func(*partition.Result)
	// ReconfigEvery is the reconfiguration rate trigger in messages
	// (0 = 10).
	ReconfigEvery uint64
	// DiffThreshold is the diff trigger sensitivity (0 = 0.2).
	DiffThreshold float64
	// Resubscribe makes the subscriber survive connection loss: it redials
	// with exponential backoff, replays the subscription handshake, and
	// reseeds the fresh session from its merged profiling snapshot, so the
	// reconfiguration unit resumes from accumulated knowledge instead of
	// restarting cold.
	Resubscribe bool
	// ResubscribeAttempts bounds consecutive failed reconnect attempts per
	// outage before the subscriber gives up terminally
	// (0 = DefaultResubscribeAttempts).
	ResubscribeAttempts int
	// HeartbeatInterval is the idle-liveness probe period
	// (0 = DefaultHeartbeatInterval, <0 disables heartbeats and silence
	// detection).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent heartbeat periods declare the
	// publisher dead: the read window is HeartbeatInterval ×
	// HeartbeatMisses (0 = DefaultHeartbeatMisses, <0 disables silence
	// detection only).
	HeartbeatMisses int
	// WriteTimeout bounds each frame write (plans, heartbeats) so a wedged
	// publisher fails the write instead of blocking forever
	// (0 = DefaultWriteTimeout, <0 disables).
	WriteTimeout time.Duration
	// MaxWork bounds the interpreter work one demodulation may consume
	// before it is cancelled with a budget fault (>0 enables; 0 leaves the
	// interpreter unbounded apart from its step limit).
	MaxWork int64
	// BreakerThreshold is how many demod failures within BreakerWindow
	// trip a PSE's circuit breaker, excluding it from the split set
	// (0 = DefaultBreakerThreshold, <0 disables the breaker).
	BreakerThreshold int
	// BreakerWindow is the failure-counting window
	// (0 = DefaultBreakerWindow, <0 disables).
	BreakerWindow time.Duration
	// BreakerCooldown is how long a tripped PSE stays excluded before a
	// half-open probe re-admits it (0 = DefaultBreakerCooldown,
	// <0 disables).
	BreakerCooldown time.Duration
	// DeadLetterSize bounds the quarantine ring for poison messages
	// (0 = DefaultDeadLetterSize, <0 disables quarantine).
	DeadLetterSize int
	// SplitPolicy is the SLO policy this channel's reconfiguration unit
	// optimises for: which operating point on the Pareto front of
	// candidate cuts each plan selection takes. The zero value
	// (reconfig.Balanced) is the legacy scalar min-cut under CostModel, so
	// existing configurations select exactly the plans they always did.
	SplitPolicy reconfig.SLOPolicy
	// LinkEstimateInterval enables live link estimation when > 0: the
	// subscriber measures RTT from heartbeat echoes (protocol v6) and
	// effective bandwidth from bytes-on-wire over wall time, and publishes
	// the measured environment into the reconfiguration unit at this
	// period, so the Pareto front tracks the real link instead of the
	// deployment-time Environment. 0 (the default) keeps the configured
	// Environment authoritative. Requires heartbeats
	// (HeartbeatInterval >= 0): the probes ride them.
	LinkEstimateInterval time.Duration
	// LinkEstimateHalfLife is the estimator's EWMA half-life
	// (0 = linkest.DefaultHalfLife).
	LinkEstimateHalfLife time.Duration
	// LinkWarmupSamples is how many samples each measured axis needs
	// before it overrides the configured Environment
	// (0 = linkest.DefaultMinSamples).
	LinkWarmupSamples int
	// FlipMargin enables plan-flip hysteresis when > 0: a challenger cut
	// must beat the incumbent on the policy's primary objective by this
	// fraction (e.g. 0.1 = 10%) for FlipConfirmations consecutive
	// selections before the plan flips. 0 disables (legacy behavior).
	FlipMargin float64
	// FlipConfirmations is the hysteresis confirmation count
	// (0 = reconfig.DefaultFlipConfirmations).
	FlipConfirmations int
	// Reliability selects the delivery contract (protocol v5). BestEffort
	// — the zero value — is the classic fire-and-forget channel.
	// AtLeastOnce adds per-subscription sequencing, publisher-side replay,
	// dedup and gap repair: every event arrives at least once (exactly
	// once at the handler, which sits behind the dedup) or its loss is
	// explicitly counted as DataLoss. Requires a v5 publisher; an older
	// one ignores the request and the channel degrades to best-effort.
	Reliability Reliability
	// AckEvery paces standalone cumulative acks: one per AckEvery
	// delivered events (0 = DefaultAckEvery). Idle heartbeats carry the
	// ack regardless. Only meaningful with AtLeastOnce.
	AckEvery uint64
	// Tracer receives split-lifecycle trace events (demodulation, faults,
	// feedback merges, min-cut runs, plan pushes, breaker transitions,
	// NACKs, dead-letter quarantines). Nil — the default — disables
	// tracing at zero per-event cost; per-PSE histograms (see Collect)
	// are always on.
	Tracer *obsv.Tracer
	// Logf receives diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Subscriber is the receiver side of one subscription: it demodulates
// incoming messages, merges sender feedback with local profiling, and
// pushes new plans back to the publisher. With Resubscribe set it also
// survives connection loss: profiling state and the reconfiguration unit
// live here, not in the connection, so a fresh session can be seeded from
// everything learned before the failure.
type Subscriber struct {
	cfg      SubscriberConfig
	sup      supervision
	subMsg   *wire.Subscribe
	compiled *partition.Compiled
	demod    *partition.Demodulator
	coll     *profileunit.Collector
	runit    *reconfig.Unit
	trigger  profileunit.Trigger
	metrics  channelMetrics
	hists    *pseHistograms
	breaker  *pseBreaker
	letters  *deadLetterRing
	// rel is the at-least-once receive state: dedup, gap detection and
	// ack pacing (nil on best-effort subscriptions). It survives
	// reconnects — the resubscribe handshake carries its contiguous seq
	// so the stream resumes instead of restarting.
	rel *relReceiver
	// link measures the subscription's live RTT/bandwidth (nil when link
	// estimation is disabled). Reset on resubscribe: the fresh session may
	// sit on a different path.
	link *linkest.Estimator

	mu          sync.Mutex
	conn        transport.Conn
	senderStats map[int32]costmodel.Stat
	lastSplit   []int32
	readErr     error
	processed   uint64

	done     chan struct{}
	stop     chan struct{} // closed by Close: aborts reconnect backoff
	stopOnce sync.Once
	closing  atomic.Bool
}

// fullJitter draws a uniform delay in [0, d): full-jitter backoff. The
// *ceiling* doubles deterministically while every waiter sleeps a random
// fraction of it, so subscribers orphaned by one publisher restart spread
// their reconnects across the window instead of stampeding in lockstep.
func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d)))
}

// SubscribeWithRetry dials the publisher with full-jitter exponential
// backoff (ceiling starting at 50ms, doubling, capped at 2s; each wait
// drawn uniformly below the ceiling) until the subscription succeeds or
// attempts are exhausted — for deployments where the receiver may come up
// before its publisher.
func SubscribeWithRetry(cfg SubscriberConfig, attempts int) (*Subscriber, error) {
	if attempts < 1 {
		attempts = 1
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		sub, err := Subscribe(cfg)
		if err == nil {
			return sub, nil
		}
		lastErr = err
		if i+1 < attempts {
			time.Sleep(fullJitter(backoff))
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
	}
	return nil, fmt.Errorf("jecho: subscribe after %d attempts: %w", attempts, lastErr)
}

// Subscribe dials the publisher, installs the handler, and starts the
// receive loop.
func Subscribe(cfg SubscriberConfig) (*Subscriber, error) {
	if cfg.Builtins == nil {
		return nil, fmt.Errorf("jecho: subscriber needs a builtin registry")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.ReconfigEvery == 0 {
		cfg.ReconfigEvery = 10
	}
	if cfg.DiffThreshold == 0 {
		cfg.DiffThreshold = 0.2
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.Default()
	}
	subMsg := &wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: cfg.Name,
		Channel:    cfg.Channel,
		Handler:    cfg.Handler,
		Source:     cfg.Source,
		CostModel:  cfg.CostModel,
		Natives:    cfg.Natives,
	}
	if cfg.Reliability == AtLeastOnce {
		subMsg.Reliability = wire.ReliabilityAtLeastOnce
	}
	compiled, err := compileSubscription(subMsg)
	if err != nil {
		return nil, err
	}

	env := interp.NewEnv(compiled.Classes, cfg.Builtins)
	if cfg.MaxWork > 0 {
		env.MaxWork = cfg.MaxWork
	}
	coll := profileunit.NewCollector(compiled.NumPSEs())
	demod := partition.NewDemodulator(compiled, env)
	demod.Probe = coll
	demod.CrossProbe = coll
	s := &Subscriber{
		cfg:      cfg,
		sup:      resolveSupervision(cfg.HeartbeatInterval, cfg.HeartbeatMisses, cfg.WriteTimeout),
		subMsg:   subMsg,
		compiled: compiled,
		demod:    demod,
		coll:     coll,
		runit:    newPolicyUnit(compiled, cfg.Environment, cfg.SplitPolicy, cfg.FlipMargin, cfg.FlipConfirmations),
		trigger: &profileunit.EitherTrigger{Children: []profileunit.Trigger{
			&profileunit.RateTrigger{EveryMessages: cfg.ReconfigEvery},
			&profileunit.DiffTrigger{Threshold: cfg.DiffThreshold, MinMessages: 3},
		}},
		senderStats: make(map[int32]costmodel.Stat),
		hists:       newPSEHistograms(compiled.NumPSEs()),
		breaker:     resolveBreaker(cfg.BreakerThreshold, cfg.BreakerWindow, cfg.BreakerCooldown),
		letters:     newDeadLetterRing(cfg.DeadLetterSize),
		done:        make(chan struct{}),
		stop:        make(chan struct{}),
	}
	if cfg.Reliability == AtLeastOnce {
		s.rel = newRelReceiver(cfg.AckEvery)
	}
	if cfg.LinkEstimateInterval > 0 {
		s.link = linkest.New(linkest.Config{
			HalfLife:   cfg.LinkEstimateHalfLife,
			MinSamples: cfg.LinkWarmupSamples,
		})
	}
	if cfg.Tracer != nil {
		s.breaker.observeTransitions(breakerObserver(cfg.Tracer, cfg.Channel, func() string { return cfg.Name }))
	}
	conn, err := s.connect()
	if err != nil {
		return nil, err
	}
	s.setConn(conn)
	// Install the static initial plan at the sender.
	plan, wirePlan, err := s.runit.InitialPlan()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	demod.SetProfilePlan(plan)
	if err := s.sendPlan(wirePlan); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go s.supervise(conn)
	return s, nil
}

// connect dials the publisher and replays the subscription handshake. It is
// the shared path of the initial Subscribe and every resubscription.
func (s *Subscriber) connect() (transport.Conn, error) {
	conn, err := s.cfg.Transport.Dial(s.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("jecho: dial publisher: %w", err)
	}
	if s.rel != nil {
		// The handshake carries the last contiguously received seq — and
		// the epoch of the stream it counts — so the publisher resumes the
		// stream (replaying what we missed) instead of restarting it, and
		// knows to ignore the resume point entirely when its state is a
		// different stream.
		s.subMsg.ResumeSeq, s.subMsg.ResumeEpoch = s.rel.resumePoint()
	}
	data, err := wire.Marshal(s.subMsg)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	s.sup.armWrite(conn)
	if err := conn.WriteFrame(data); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("jecho: subscribe handshake: %w", err)
	}
	return conn, nil
}

// Compiled exposes the compiled handler (PSE table) for inspection.
func (s *Subscriber) Compiled() *partition.Compiled { return s.compiled }

// Processed returns the number of completed messages.
func (s *Subscriber) Processed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed
}

// Done is closed when the receive loop ends for good — after Close, after a
// connection loss with Resubscribe off, or after reconnect attempts are
// exhausted. Mid-outage, a resubscribing subscriber keeps Done open.
func (s *Subscriber) Done() <-chan struct{} { return s.done }

// Stats returns the merged (sender + receiver) per-PSE profiling snapshot —
// the same view the reconfiguration unit decides on.
func (s *Subscriber) Stats() map[int32]costmodel.Stat {
	s.mu.Lock()
	sender := make(map[int32]costmodel.Stat, len(s.senderStats))
	for id, st := range s.senderStats {
		sender[id] = st
	}
	s.mu.Unlock()
	return profileunit.Merge(sender, s.coll.Snapshot())
}

// Metrics snapshots the subscriber-side channel counters: messages
// demodulated, bytes received, plans pushed, reconnects survived.
// Publisher-only fields (Dropped, Suppressed, queue depths) stay zero here.
func (s *Subscriber) Metrics() ChannelMetrics {
	return s.metrics.snapshot()
}

// DeadLetters snapshots the quarantined poison messages, oldest first (nil
// when quarantine is disabled).
func (s *Subscriber) DeadLetters() []DeadLetter {
	return s.letters.Snapshot()
}

// RedeliverDeadLetters drains the quarantine ring and runs every letter
// back through the demodulator, as if its frame had just arrived. A letter
// that now decodes and demodulates cleanly is delivered exactly like a live
// event — it counts toward Published/Processed and reaches OnResult — and
// is tallied as redelivered. A letter that fails again is re-quarantined
// with the fresh error and tallied as requarantined, so it can be retried
// on a later call. This lets an operator retry poison messages after the
// cause is fixed — an upgraded handler image, a restored native binding —
// without restarting the subscription.
//
// Redelivery is local: no NACK goes upstream for a repeat failure (the
// publisher already heard about the original), breakers are untouched, and
// delivery-sequence bookkeeping is unchanged — a sequenced letter was
// already admitted by dedup when it first arrived.
func (s *Subscriber) RedeliverDeadLetters() (redelivered, requarantined int) {
	for _, dl := range s.letters.drain() {
		class := wire.NackDecode
		msg, err := wire.Unmarshal(dl.Frame)
		if err == nil {
			// A letter quarantined at the envelope layer holds the wrapped
			// event; unwrap so the demodulator sees the inner message.
			if se, ok := msg.(*wire.SeqEvent); ok {
				msg, err = wire.Unmarshal(se.Payload)
			}
		}
		var res *partition.Result
		if err == nil {
			if res, err = s.demod.Process(msg); err != nil {
				class = partition.FaultClassOf(err)
			}
		}
		if err != nil {
			dl.Class = class
			dl.Reason = err.Error()
			s.quarantine(dl)
			requarantined++
			s.metrics.dlRequarantined.Add(1)
			continue
		}
		s.metrics.published.Add(1)
		s.mu.Lock()
		s.processed++
		s.mu.Unlock()
		if s.cfg.OnResult != nil {
			s.cfg.OnResult(res)
		}
		redelivered++
		s.metrics.dlRedelivered.Add(1)
	}
	return redelivered, requarantined
}

// Err returns the terminal error (nil on clean close). A close initiated
// locally via Close is clean; a publisher that goes away mid-subscription is
// not. While a resubscribing subscriber is mid-outage Err stays nil — an
// outage it expects to survive is not terminal.
func (s *Subscriber) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readErr
}

// Close tears the subscription down, aborting any in-flight reconnect.
func (s *Subscriber) Close() error {
	s.closing.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.currentConn().Close()
	<-s.done
	return err
}

func (s *Subscriber) setConn(conn transport.Conn) {
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
}

func (s *Subscriber) currentConn() transport.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn
}

func (s *Subscriber) setErr(err error) {
	s.mu.Lock()
	s.readErr = err
	s.mu.Unlock()
}

func (s *Subscriber) sendPlan(p *wire.Plan) error {
	data, err := wire.Marshal(p)
	if err != nil {
		return err
	}
	conn := s.currentConn()
	s.sup.armWrite(conn)
	if err := conn.WriteFrame(data); err != nil {
		return err
	}
	s.metrics.controlBytes.Add(uint64(len(data)) + transport.HeaderSize)
	s.mu.Lock()
	flipped := s.lastSplit != nil && !equalSplit(s.lastSplit, p.Split)
	if flipped {
		s.metrics.planFlips.Add(1)
	}
	s.lastSplit = append([]int32(nil), p.Split...)
	s.mu.Unlock()
	if flipped {
		tracePlanFlip(s.cfg.Tracer, s.cfg.Channel, s.cfg.Name, p.Version, p.Split)
	}
	return nil
}

// supervise owns the subscription across connections: it runs the read loop
// on the current connection and, when the connection dies underneath a
// Resubscribe subscriber, redials, resubscribes and resyncs before going
// around again. It is the only goroutine that closes done.
func (s *Subscriber) supervise(conn transport.Conn) {
	defer close(s.done)
	for {
		err := s.readLoop(conn)
		if s.closing.Load() {
			return
		}
		if !s.cfg.Resubscribe {
			s.setErr(err)
			return
		}
		s.cfg.Logf("jecho subscriber %s: connection lost (%v); resubscribing", s.cfg.Name, err)
		next, rerr := s.resubscribe()
		if rerr != nil {
			if !s.closing.Load() {
				s.setErr(rerr)
			}
			return
		}
		s.metrics.reconnects.Add(1)
		conn = next
	}
}

// resubscribe redials with full-jitter exponential backoff (ceiling 50ms
// doubling, capped at 2s; each wait uniform below the ceiling — a publisher
// restart must not get a synchronized thundering herd from every orphaned
// subscriber) until a fresh session is connected and resynced, attempts run
// out, or Close aborts the wait.
func (s *Subscriber) resubscribe() (transport.Conn, error) {
	attempts := s.cfg.ResubscribeAttempts
	if attempts <= 0 {
		attempts = DefaultResubscribeAttempts
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-s.stop:
				return nil, fmt.Errorf("jecho: subscriber closed during resubscribe")
			case <-time.After(fullJitter(backoff)):
			}
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		conn, err := s.connect()
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.resync(conn); err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		return conn, nil
	}
	return nil, fmt.Errorf("jecho: resubscribe after %d attempts: %w", attempts, lastErr)
}

// resync seeds a fresh session from everything learned before the outage:
// it recomputes the plan from the merged (sender + receiver) profiling
// snapshot — both halves survive the connection because they live in the
// subscriber — and pushes it to the publisher's newly compiled modulator,
// so the split decision resumes where it left off instead of walking in
// again from the static initial plan.
func (s *Subscriber) resync(conn transport.Conn) error {
	s.setConn(conn)
	if s.link != nil {
		// The fresh session may sit on a different path; pre-disconnect
		// samples must not keep pricing its plans. Drop the estimator state
		// and fall back to the configured environment until the new link's
		// measurements clear the warm-up gate again.
		s.link.Reset()
		s.runit.SetEnvironment(s.cfg.Environment)
	}
	if s.rel != nil {
		// Retransmit requests issued on the dead connection died with it;
		// gaps still open after the publisher's resume replay must be
		// re-requested on this one.
		s.rel.resetRequests()
	}
	s.mu.Lock()
	merged := profileunit.Merge(s.senderStats, s.coll.Snapshot())
	s.mu.Unlock()
	s.runit.SetTripped(s.breaker.OpenIDs())
	plan, wirePlan, err := s.runit.SelectPlan(merged)
	if err != nil {
		return err
	}
	traceMinCut(s.cfg.Tracer, s.cfg.Channel, s.cfg.Name, s.runit)
	s.demod.SetProfilePlan(plan)
	return s.sendPlan(wirePlan)
}

// heartbeatLoop proves liveness to the publisher while the plan channel is
// idle. A failed heartbeat write closes the connection, which wakes the
// read loop blocked on the same conn so supervision can take over.
func (s *Subscriber) heartbeatLoop(conn transport.Conn, connDone <-chan struct{}) {
	t := time.NewTicker(s.sup.interval)
	defer t.Stop()
	var seq uint64
	var buf []byte // reused per tick; the transport copies on write
	var lastEnvPub time.Time
	for {
		select {
		case <-connDone:
			return
		case <-s.stop:
			return
		case <-t.C:
			seq++
			hb := &wire.Heartbeat{Seq: seq}
			if s.link != nil {
				// The heartbeat doubles as an RTT probe: a v6 publisher
				// echoes Seq back and the read loop closes the sample.
				s.link.Probe(seq)
			}
			if s.rel != nil {
				// Idle channels still drain the publisher's replay ring:
				// every heartbeat piggybacks the cumulative ack, and the
				// publisher's idle-replay heuristic keys off repeated acks
				// to repair a lost stream tail.
				hb.HasAck = true
				hb.AckSeq = s.rel.contiguous()
			}
			var err error
			buf, err = wire.AppendMarshal(buf[:0], hb)
			if err != nil {
				return
			}
			s.sup.armWrite(conn)
			if err := conn.WriteFrame(buf); err != nil {
				_ = conn.Close()
				return
			}
			s.metrics.heartbeatsSent.Add(1)
			if hb.HasAck {
				s.metrics.acksSent.Add(1)
			}
			s.metrics.controlBytes.Add(uint64(len(buf)) + transport.HeaderSize)
			if s.link != nil {
				// Effective bandwidth: this side's cumulative bytes on the
				// wire (event + control, both directions are one link)
				// sampled over wall time by the estimator.
				s.link.ObserveBytes(s.metrics.bytesOnWire.Load() + s.metrics.controlBytes.Load())
				if now := time.Now(); now.Sub(lastEnvPub) >= s.cfg.LinkEstimateInterval {
					lastEnvPub = now
					if env, measured := s.link.Environment(s.cfg.Environment); measured {
						// Race-safe by design; the next SelectPlan prices
						// the front against the measured link.
						s.runit.SetEnvironment(env)
					}
				}
			}
			if s.rel != nil {
				// Heartbeat-paced gap retry: a retransmit request whose
				// replay was dropped would otherwise never be re-issued on
				// this connection (reqHigh is a high-water mark). retryGap
				// re-arms it after a backoff of stalled ticks.
				if from, to := s.rel.retryGap(); to != 0 {
					s.sendRetransmitRequest(from, to)
				}
			}
		}
	}
}

// readLoop serves one connection until it dies, returning the read error.
func (s *Subscriber) readLoop(conn transport.Conn) error {
	connDone := make(chan struct{})
	defer close(connDone)
	if s.sup.interval > 0 {
		go s.heartbeatLoop(conn, connDone)
	}
	for {
		s.sup.armRead(conn)
		frame, err := conn.ReadFrame()
		if err != nil {
			return err
		}
		wireBytes := uint64(len(frame)) + transport.HeaderSize
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			// An undecodable frame is a per-frame fault, not a transient
			// connection error: count it, quarantine the bytes for
			// inspection, and keep serving the connection. No NACK — a
			// frame too broken to decode cannot be attributed to a PSE.
			// Its bytes count as event traffic: that is what it almost
			// certainly was, and the bytes-saved ratio should see its cost.
			s.metrics.bytesOnWire.Add(wireBytes)
			s.metrics.decodeFailures.Add(1)
			s.quarantine(DeadLetter{
				PSEID:  UnattributedPSE,
				Class:  wire.NackDecode,
				Reason: err.Error(),
				Frame:  frame,
			})
			s.cfg.Logf("jecho subscriber: decode: %v", err)
			continue
		}
		switch m := msg.(type) {
		case *wire.Raw, *wire.Continuation:
			s.metrics.bytesOnWire.Add(wireBytes)
			s.handleEvent(m, frame)
		case *wire.SeqEvent:
			s.metrics.bytesOnWire.Add(wireBytes)
			s.handleSeqEvent(m)
		case *wire.Batch:
			s.metrics.bytesOnWire.Add(wireBytes)
			s.metrics.batchesRecv.Add(1)
			s.handleBatch(m)
		case *wire.StreamStart:
			s.metrics.controlBytes.Add(wireBytes)
			s.handleStreamStart(m)
		case *wire.Lost:
			s.metrics.controlBytes.Add(wireBytes)
			s.handleLost(m)
		case *wire.Feedback:
			s.metrics.controlBytes.Add(wireBytes)
			s.applyFeedback(m)
		case *wire.Heartbeat:
			s.metrics.controlBytes.Add(wireBytes)
			s.metrics.heartbeatsRecv.Add(1)
			if m.HasEcho && s.link != nil {
				s.link.Echo(m.EchoSeq)
			}
			if m.Seq > 0 {
				// Reflect the publisher's probe so it can measure RTT on
				// its own clock. Pure echoes carry Seq 0, so two endpoints
				// never echo each other's echoes.
				s.sendEcho(m.Seq)
			}
		default:
			s.metrics.controlBytes.Add(wireBytes)
			s.cfg.Logf("jecho subscriber: unexpected %T", msg)
		}
	}
}

// handleEvent demodulates one decoded event message (Raw or Continuation),
// whether it arrived as its own wire frame or as one entry of a batch.
// frame is the encoded form of exactly this message, kept for quarantine
// and per-PSE byte attribution.
func (s *Subscriber) handleEvent(m any, frame []byte) {
	start := time.Now()
	res, err := s.demod.Process(m)
	demodDur := time.Since(start)
	if err != nil {
		s.noteDemodFailure(m, frame, err)
		return
	}
	s.metrics.published.Add(1)
	seq, _ := attribution(m)
	observeDemod(s.cfg.Tracer, s.hists, s.cfg.Channel, s.cfg.Name,
		seq, res.SplitPSE, int64(len(frame)), res.DemodWork, demodDur)
	if res.SplitPSE >= 0 {
		s.breaker.Succeed(res.SplitPSE)
	}
	s.mu.Lock()
	s.processed++
	s.mu.Unlock()
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(res)
	}
	s.maybeReconfigure()
}

// handleBatch unpacks a batch frame and demodulates each entry in order,
// with per-entry fault containment: a corrupt or poison entry is counted,
// quarantined and NACKed exactly as if it had arrived in its own frame,
// and the remaining entries still run.
func (s *Subscriber) handleBatch(b *wire.Batch) {
	for _, entry := range b.Entries {
		inner, err := wire.Unmarshal(entry)
		if err != nil {
			s.metrics.decodeFailures.Add(1)
			s.quarantine(DeadLetter{
				PSEID:  UnattributedPSE,
				Class:  wire.NackDecode,
				Reason: err.Error(),
				Frame:  entry,
			})
			s.cfg.Logf("jecho subscriber: batch entry decode: %v", err)
			continue
		}
		switch m := inner.(type) {
		case *wire.Raw, *wire.Continuation:
			s.handleEvent(m, entry)
		case *wire.SeqEvent:
			s.handleSeqEvent(m)
		default:
			// Only event frames ride in batches; a nested batch or a
			// smuggled control frame is a protocol violation by the peer.
			s.metrics.decodeFailures.Add(1)
			s.cfg.Logf("jecho subscriber: batch entry was %T", m)
		}
	}
}

// handleSeqEvent unwraps one delivery-sequenced event: dedup and gap
// detection run on the envelope's seq *before* demodulation, so the
// handler sits strictly behind the dedup (at-least-once on the wire,
// exactly-once at the handler). Acking is receipt-based — a poison payload
// is still acked, because redelivering it would just poison again; the
// dead-letter quarantine owns that failure mode.
func (s *Subscriber) handleSeqEvent(se *wire.SeqEvent) {
	if s.rel == nil {
		// A best-effort subscription must never see envelopes; a publisher
		// that sends them anyway is violating the negotiated protocol.
		s.metrics.decodeFailures.Add(1)
		s.cfg.Logf("jecho subscriber: unexpected seq envelope on best-effort channel")
		return
	}
	deliver, gapFrom, gapTo, ackDue, ackSeq := s.rel.admit(se.Seq)
	if gapTo != 0 {
		s.sendRetransmitRequest(gapFrom, gapTo)
	}
	if !deliver {
		// Replay overshoot or ack race: drop before the handler and ack
		// immediately so the replaying publisher converges.
		s.metrics.duplicatesDropped.Add(1)
		s.sendAck(ackSeq)
		return
	}
	inner, err := wire.Unmarshal(se.Payload)
	if err != nil {
		s.metrics.decodeFailures.Add(1)
		s.quarantine(DeadLetter{
			PSEID:  UnattributedPSE,
			Class:  wire.NackDecode,
			Reason: err.Error(),
			Frame:  se.Payload,
		})
		s.cfg.Logf("jecho subscriber: seq %d payload decode: %v", se.Seq, err)
	} else {
		switch m := inner.(type) {
		case *wire.Raw, *wire.Continuation:
			s.handleEvent(m, se.Payload)
		default:
			s.metrics.decodeFailures.Add(1)
			s.cfg.Logf("jecho subscriber: seq envelope carried %T", m)
		}
	}
	if ackDue {
		s.sendAck(ackSeq)
	}
}

// handleStreamStart processes the publisher's stream-epoch handshake — the
// first frame of every at-least-once connection. A changed epoch means the
// stream this receiver was deduplicating is dead (publisher restart,
// evicted orphan, duplicate-triple fresh state): the dedup state resets so
// the new stream's events deliver instead of being silently dropped as
// duplicates of the old numbering. The break is loud — counted on
// StreamResets, traced, logged — but NOT added to DataLoss: the old
// stream's undelivered tail is unknowable from this side, and a fabricated
// count would corrupt the staged == processed + dataLoss identity.
func (s *Subscriber) handleStreamStart(m *wire.StreamStart) {
	if s.rel == nil {
		s.cfg.Logf("jecho subscriber: unexpected stream start on best-effort channel")
		return
	}
	if s.rel.streamStart(m.Epoch) {
		s.metrics.streamResets.Add(1)
		traceStreamReset(s.cfg.Tracer, s.cfg.Channel, s.cfg.Name, m.Epoch)
		s.cfg.Logf("jecho subscriber %s: STREAM RESET: publisher started a fresh delivery stream (epoch %d); "+
			"the previous stream's undelivered tail is unrecoverable and unquantifiable",
			s.cfg.Name, m.Epoch)
	}
}

// handleLost processes a Lost notice: the publisher's ring evicted
// [From, To] before the gap could be repaired. Every event in the range
// this subscriber never received is counted as DataLoss — loudly, on the
// counter, the tracer and the log — and the stream advances past it.
func (s *Subscriber) handleLost(m *wire.Lost) {
	if s.rel == nil {
		s.cfg.Logf("jecho subscriber: unexpected loss notice on best-effort channel")
		return
	}
	missing, ackSeq := s.rel.lost(m.From, m.To)
	if missing > 0 {
		s.metrics.dataLoss.Add(missing)
		traceDataLoss(s.cfg.Tracer, s.cfg.Channel, s.cfg.Name, m.From, m.To)
		s.cfg.Logf("jecho subscriber %s: DATA LOSS: %d events in seq range %d..%d are unrecoverable (replay ring evicted them)",
			s.cfg.Name, missing, m.From, m.To)
	}
	// Ack the advanced position immediately: the publisher is holding (or
	// re-declaring) this range until it hears we moved past it.
	s.sendAck(ackSeq)
}

// sendAck pushes a cumulative delivery ack upstream. Like sendNack it
// writes directly on the connection (WriteFrame is concurrency-safe) and
// only logs failures: the teardown a failed write implies is the read
// loop's to detect.
func (s *Subscriber) sendAck(seq uint64) {
	data, err := wire.Marshal(&wire.Ack{Seq: seq})
	if err != nil {
		return
	}
	conn := s.currentConn()
	s.sup.armWrite(conn)
	if err := conn.WriteFrame(data); err != nil {
		s.cfg.Logf("jecho subscriber: send ack: %v", err)
		return
	}
	s.metrics.acksSent.Add(1)
	s.metrics.controlBytes.Add(uint64(len(data)) + transport.HeaderSize)
}

// sendEcho reflects a publisher heartbeat's Seq back as a pure echo
// (Seq 0, so the publisher never echoes it in turn), closing the
// publisher's RTT sample. Direct connection write like sendAck.
func (s *Subscriber) sendEcho(seq uint64) {
	data, err := wire.Marshal(&wire.Heartbeat{HasEcho: true, EchoSeq: seq})
	if err != nil {
		return
	}
	conn := s.currentConn()
	s.sup.armWrite(conn)
	if err := conn.WriteFrame(data); err != nil {
		s.cfg.Logf("jecho subscriber: send echo: %v", err)
		return
	}
	s.metrics.heartbeatsSent.Add(1)
	s.metrics.controlBytes.Add(uint64(len(data)) + transport.HeaderSize)
}

// sendRetransmitRequest asks the publisher to replay [from, to] — the
// receiver observed a delivery beyond a gap these seqs should have filled.
func (s *Subscriber) sendRetransmitRequest(from, to uint64) {
	data, err := wire.Marshal(&wire.Retransmit{From: from, To: to})
	if err != nil {
		return
	}
	conn := s.currentConn()
	s.sup.armWrite(conn)
	if err := conn.WriteFrame(data); err != nil {
		s.cfg.Logf("jecho subscriber: send retransmit request: %v", err)
		return
	}
	s.metrics.retransReqSent.Add(1)
	s.metrics.controlBytes.Add(uint64(len(data)) + transport.HeaderSize)
}

// attribution extracts the sequence number and split PSE from a decoded
// event message, for failure reporting.
func attribution(msg any) (seq uint64, pse int32) {
	switch m := msg.(type) {
	case *wire.Raw:
		return m.Seq, partition.RawPSEID
	case *wire.Continuation:
		return m.Seq, m.PSEID
	}
	return 0, UnattributedPSE
}

// quarantine stamps and stores a dead letter, keeping the counter in step
// with the ring.
func (s *Subscriber) quarantine(dl DeadLetter) {
	if s.letters == nil {
		return
	}
	dl.When = time.Now()
	s.letters.add(dl)
	s.metrics.deadLettered.Add(1)
	s.cfg.Tracer.Emit(obsv.Event{
		Kind: obsv.EvDeadLetter, Channel: s.cfg.Channel, Sub: s.cfg.Name,
		PSE: dl.PSEID, EventSeq: dl.Seq, Bytes: int64(len(dl.Frame)),
		Detail: dl.Class.String(),
	})
}

// noteDemodFailure is the poison-message path: classify, count, attribute
// the fault to its split PSE, quarantine the frame, report upstream with a
// NACK, and — if this failure trips the PSE's breaker — reconfigure away
// from the broken split point immediately.
func (s *Subscriber) noteDemodFailure(msg any, frame []byte, err error) {
	class := partition.FaultClassOf(err)
	seq, pse := attribution(msg)
	s.cfg.Logf("jecho subscriber: demodulate seq %d (pse %d, class %s): %v", seq, pse, class, err)
	s.metrics.demodFailures.Add(1)
	if tr := s.cfg.Tracer; tr.Enabled() {
		tr.Emit(obsv.Event{
			Kind: obsv.EvDemodFault, Channel: s.cfg.Channel, Sub: s.cfg.Name,
			PSE: pse, EventSeq: seq, Detail: fmt.Sprintf("%s: %v", class, err),
		})
	}
	if pse >= 0 {
		s.coll.Fault(pse)
	}
	s.quarantine(DeadLetter{Seq: seq, PSEID: pse, Class: class, Reason: err.Error(), Frame: frame})
	s.sendNack(&wire.Nack{Handler: s.compiled.Prog.Name, Seq: seq, PSEID: pse, Class: class})
	if pse >= 0 && s.breaker.Fail(pse) {
		s.metrics.breakerTrips.Add(1)
		s.reconfigure()
	}
}

// sendNack reports one demod failure upstream. A failed write is only
// logged: the connection teardown it implies is detected by the read loop.
func (s *Subscriber) sendNack(n *wire.Nack) {
	data, err := wire.Marshal(n)
	if err != nil {
		s.cfg.Logf("jecho subscriber: marshal nack: %v", err)
		return
	}
	conn := s.currentConn()
	s.sup.armWrite(conn)
	if err := conn.WriteFrame(data); err != nil {
		s.cfg.Logf("jecho subscriber: send nack: %v", err)
		return
	}
	s.metrics.nacksSent.Add(1)
	s.metrics.controlBytes.Add(uint64(len(data)) + transport.HeaderSize)
	s.cfg.Tracer.Emit(obsv.Event{
		Kind: obsv.EvNackSent, Channel: s.cfg.Channel, Sub: s.cfg.Name,
		PSE: n.PSEID, EventSeq: n.Seq, Detail: n.Class.String(),
	})
}

// applyFeedback merges a sender-side profiling report. Sender-side failure
// counts (modulation faults the publisher attributed to PSEs) feed the
// local breaker as deltas, so a sender whose modulator keeps failing at a
// PSE trips it here too. The report also carries the publisher's active
// plan version; fast-forwarding the reconfiguration unit past it keeps
// locally selected plans from being rejected as stale after the publisher's
// degrade path forced a version on its own.
func (s *Subscriber) applyFeedback(fb *wire.Feedback) {
	s.runit.ObserveVersion(fb.PlanVersion)
	stats := profileunit.FromWire(fb)
	s.cfg.Tracer.Emit(obsv.Event{
		Kind: obsv.EvFeedback, Channel: s.cfg.Channel, Sub: s.cfg.Name,
		PSE: obsv.NoPSE, Plan: fb.PlanVersion, Value: int64(len(stats)),
	})
	tripped := false
	s.mu.Lock()
	for id, st := range stats {
		prev := s.senderStats[id]
		s.senderStats[id] = st
		if st.Failures > prev.Failures {
			if s.breaker.FailN(id, st.Failures-prev.Failures) {
				s.metrics.breakerTrips.Add(1)
				tripped = true
			}
		}
	}
	s.mu.Unlock()
	if tripped {
		s.reconfigure()
	} else {
		s.maybeReconfigure()
	}
}

// maybeReconfigure runs the reconfiguration unit when the triggers fire and
// pushes any changed plan back to the publisher.
func (s *Subscriber) maybeReconfigure() {
	s.mu.Lock()
	merged := profileunit.Merge(s.senderStats, s.coll.Snapshot())
	messages := s.processed
	s.mu.Unlock()
	if !s.trigger.ShouldReport(merged, messages) {
		return
	}
	s.reconfigureWith(merged)
}

// reconfigure recomputes the plan immediately, bypassing the triggers —
// used when a breaker trip makes the active plan unhealthy *now*.
func (s *Subscriber) reconfigure() {
	s.mu.Lock()
	merged := profileunit.Merge(s.senderStats, s.coll.Snapshot())
	s.mu.Unlock()
	s.reconfigureWith(merged)
}

// reconfigureWith applies the breaker's exclusions to the reconfiguration
// unit, selects a plan for the given statistics, and pushes it. Only the
// read loop (and resync, which never runs concurrently with it) calls this,
// so runit access stays serialized.
func (s *Subscriber) reconfigureWith(merged map[int32]costmodel.Stat) {
	s.runit.SetTripped(s.breaker.OpenIDs())
	plan, wirePlan, err := s.runit.SelectPlan(merged)
	if err != nil {
		s.cfg.Logf("jecho subscriber: reconfigure: %v", err)
		return
	}
	traceMinCut(s.cfg.Tracer, s.cfg.Channel, s.cfg.Name, s.runit)
	s.demod.SetProfilePlan(plan)
	if err := s.sendPlan(wirePlan); err != nil {
		s.cfg.Logf("jecho subscriber: send plan: %v", err)
	}
}

// newPolicyUnit builds a reconfiguration unit with its SLO policy and flip
// hysteresis set.
func newPolicyUnit(c *partition.Compiled, env costmodel.Environment, policy reconfig.SLOPolicy, flipMargin float64, flipConfirmations int) *reconfig.Unit {
	u := reconfig.NewUnit(c, env)
	u.Policy = policy
	u.FlipMargin = flipMargin
	u.FlipConfirmations = flipConfirmations
	return u
}
