package obsv

import (
	"sync"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper edges: 0.5 and 1 land in bucket 0; 1.5
	// and 10 in bucket 1; 50 in bucket 2; 1000 overflows.
	want := []uint64{2, 2, 1, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 0.5+1+1.5+10+50+1000 {
		t.Fatalf("Sum = %v", s.Sum)
	}
}

func TestHistogramBoundsCopied(t *testing.T) {
	bounds := []float64{1, 2, 3}
	h := NewHistogram(bounds)
	bounds[0] = 99
	if h.Snapshot().Bounds[0] != 1 {
		t.Fatal("NewHistogram aliased the caller's bounds slice")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) * 1e-5)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, Count is %d", total, s.Count)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	if n := testing.AllocsPerRun(200, func() { h.Observe(0.001) }); n != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", n)
	}
}

func TestStandardBucketLayouts(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"latency": LatencyBuckets, "size": SizeBuckets, "work": WorkBuckets,
	} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s bounds not ascending at %d: %v", name, i, bounds)
			}
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
