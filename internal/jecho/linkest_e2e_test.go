package jecho_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/obsv"
	"methodpart/internal/transport"
)

// latTransport wraps a transport with a settable symmetric write delay, so
// tests can present one link quality before a failure and another after it.
// It also tracks live connections for severing.
type latTransport struct {
	inner transport.Transport
	delay atomic.Int64 // nanoseconds added to every WriteFrame

	mu    sync.Mutex
	conns []transport.Conn
}

func newLatTransport(inner transport.Transport) *latTransport {
	return &latTransport{inner: inner}
}

func (t *latTransport) SetDelay(d time.Duration) { t.delay.Store(int64(d)) }

// SeverAll closes every connection made through the transport so far.
func (t *latTransport) SeverAll() int {
	t.mu.Lock()
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return len(conns)
}

func (t *latTransport) track(c transport.Conn) transport.Conn {
	lc := &latConn{Conn: c, tr: t}
	t.mu.Lock()
	t.conns = append(t.conns, lc)
	t.mu.Unlock()
	return lc
}

func (t *latTransport) Listen(addr string) (transport.Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &latListener{Listener: l, tr: t}, nil
}

func (t *latTransport) Dial(addr string) (transport.Conn, error) {
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return t.track(c), nil
}

type latListener struct {
	transport.Listener
	tr *latTransport
}

func (l *latListener) Accept() (transport.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.tr.track(c), nil
}

type latConn struct {
	transport.Conn
	tr *latTransport
}

func (c *latConn) WriteFrame(payload []byte) error {
	if d := c.tr.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return c.Conn.WriteFrame(payload)
}

// linkOf pulls the single channel's link status out of an endpoint
// snapshot, nil when absent.
func linkOf(ep obsv.EndpointStatus) *obsv.LinkStatus {
	if len(ep.Channels) != 1 {
		return nil
	}
	return ep.Channels[0].Link
}

// TestLinkEstimationEndToEnd runs a publisher and subscriber with link
// estimation enabled over a link with injected latency, and requires that
// BOTH sides accumulate echo-derived RTT samples and surface them through
// Status and Collect. The injected one-way delay is 2ms, so a correct
// estimator must report an RTT comfortably above zero.
func TestLinkEstimationEndToEnd(t *testing.T) {
	tr := newLatTransport(transport.NewMem())
	tr.SetDelay(2 * time.Millisecond)
	pub := chaosPublisher(t, tr, jecho.PublisherConfig{
		FeedbackEvery:        5,
		HeartbeatInterval:    15 * time.Millisecond,
		HeartbeatMisses:      20,
		WriteTimeout:         time.Second,
		LinkEstimateInterval: 10 * time.Millisecond,
	})
	sub := chaosSubscribe(t, tr, pub.Addr(), jecho.SubscriberConfig{
		Name:                 "linkest",
		ReconfigEvery:        5,
		HeartbeatInterval:    15 * time.Millisecond,
		HeartbeatMisses:      20,
		WriteTimeout:         time.Second,
		LinkEstimateInterval: 10 * time.Millisecond,
	})

	// Traffic so the bandwidth axis has bytes to meter.
	for i := 0; i < 40; i++ {
		if _, err := pub.Publish(imaging.NewFrame(200, 200, int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	deadline := time.Now().Add(10 * time.Second)
	var pubLink, subLink *obsv.LinkStatus
	for {
		pubLink = linkOf(pub.Status())
		subLink = linkOf(sub.Status())
		if pubLink != nil && subLink != nil &&
			pubLink.RTTSamples >= 3 && subLink.RTTSamples >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("link estimate never warmed: publisher=%+v subscriber=%+v", pubLink, subLink)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 2ms injected each way: a correct RTT estimate is >= 4ms. Allow
	// generous slack below but require it clearly off zero.
	if subLink.RTTMS < 1 {
		t.Errorf("subscriber RTT estimate = %.3fms, want >= 1ms with 2ms injected delay", subLink.RTTMS)
	}
	if pubLink.RTTMS < 1 {
		t.Errorf("publisher RTT estimate = %.3fms, want >= 1ms with 2ms injected delay", pubLink.RTTMS)
	}
	if subLink.BandwidthSamples == 0 {
		t.Error("subscriber metered no bandwidth samples despite traffic")
	}

	// The gauges must reach the metrics surface on both roles.
	for _, c := range []struct {
		role    string
		collect func(func(obsv.Sample))
	}{
		{"publisher", pub.Collect},
		{"subscriber", sub.Collect},
	} {
		var rtt, bw bool
		c.collect(func(s obsv.Sample) {
			switch s.Name {
			case "methodpart_link_rtt_ms":
				rtt = s.Value > 0
			case "methodpart_link_bandwidth_bps":
				bw = true
			}
		})
		if !rtt || !bw {
			t.Errorf("%s Collect: link gauges missing or zero (rtt>0=%v, bandwidth present=%v)", c.role, rtt, bw)
		}
	}
}

// TestResubscribeResetsLinkEstimate is the regression test for estimator
// state surviving a reconnect: converge the estimate on a fast link, sever,
// degrade the link, and require the fresh session's estimate to reflect the
// NEW link promptly. The half-life is set long (60s) on purpose — if resync
// failed to reset the estimator, the stale near-zero RTT average could not
// drift up to the degraded link's RTT within the test window, and only a
// reseeded estimator (first sample after reset seeds directly) passes.
func TestResubscribeResetsLinkEstimate(t *testing.T) {
	tr := newLatTransport(transport.NewMem())
	pub := chaosPublisher(t, tr, jecho.PublisherConfig{
		FeedbackEvery:        5,
		HeartbeatInterval:    10 * time.Millisecond,
		HeartbeatMisses:      5,
		WriteTimeout:         time.Second,
		LinkEstimateInterval: 10 * time.Millisecond,
		LinkEstimateHalfLife: 60 * time.Second,
	})
	sub := chaosSubscribe(t, tr, pub.Addr(), jecho.SubscriberConfig{
		Name:                 "linkest-reset",
		ReconfigEvery:        5,
		Resubscribe:          true,
		HeartbeatInterval:    10 * time.Millisecond,
		HeartbeatMisses:      5,
		WriteTimeout:         time.Second,
		LinkEstimateInterval: 10 * time.Millisecond,
		LinkEstimateHalfLife: 60 * time.Second,
	})

	// Phase 1: fast link (in-memory, no injected delay). Let the RTT
	// average converge near zero.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if l := linkOf(sub.Status()); l != nil && l.RTTSamples >= 5 {
			if l.RTTMS > 3 {
				t.Fatalf("fast-link RTT estimate = %.3fms, want near zero", l.RTTMS)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("estimate never warmed on the fast link")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: degrade the link to ~20ms RTT and cut every connection.
	tr.SetDelay(10 * time.Millisecond)
	if n := tr.SeverAll(); n == 0 {
		t.Fatal("SeverAll cut nothing")
	}

	// The resubscribed session must converge to the new link's RTT. With a
	// 60s half-life this is only reachable if the reconnect reset the
	// estimator so the first post-reset sample reseeds the average.
	deadline = time.Now().Add(15 * time.Second)
	for {
		if l := linkOf(sub.Status()); l != nil && l.RTTMS >= 8 {
			break
		}
		if time.Now().After(deadline) {
			l := linkOf(sub.Status())
			t.Fatalf("post-reconnect RTT estimate stuck at %+v, want >= 8ms on the degraded link", l)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sub.Metrics().Reconnects == 0 {
		t.Error("subscriber recorded no reconnects")
	}
}
