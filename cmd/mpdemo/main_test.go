package main

import "testing"

func TestRunBoth(t *testing.T) {
	if err := run([]string{"-mode", "both", "-frames", "8", "-display", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBothDropOldest(t *testing.T) {
	if err := run([]string{"-mode", "both", "-frames", "8", "-display", "64",
		"-queue", "4", "-overflow", "drop-oldest"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestUnknownOverflowPolicy(t *testing.T) {
	if err := run([]string{"-mode", "both", "-overflow", "bogus"}); err == nil {
		t.Fatal("unknown overflow policy accepted")
	}
}
