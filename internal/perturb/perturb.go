// Package perturb implements the paper's synthetic load model (§5.2):
// perturbation threads with active and idle periods. A period's length is
// drawn around PLen, a period is active with probability AProb, and active
// periods impose a fixed load index LIndex (the ratio of busy cycles). The
// random draws are pre-generated from a seed so that — exactly as in the
// paper — the same perturbation trace drives every implementation being
// compared.
package perturb

import (
	"fmt"
	"math/rand"
	"sort"
)

// Config describes one host's perturbation workload.
type Config struct {
	// Seed makes the trace reproducible; the same seed yields the same
	// trace for every implementation under comparison.
	Seed int64
	// Threads is the number of perturbation threads (0 = unloaded host).
	Threads int
	// PLenMS is the expected period length in milliseconds; actual period
	// lengths are uniform on [0.5, 1.5]·PLenMS.
	PLenMS float64
	// AProb is the probability that a period is active.
	AProb float64
	// LIndex is the busy-cycle ratio during active periods (0..1].
	LIndex float64
	// HorizonMS is the trace length; load queries wrap around it.
	HorizonMS float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Threads < 0 {
		return fmt.Errorf("perturb: negative thread count")
	}
	if c.Threads > 0 {
		if c.PLenMS <= 0 {
			return fmt.Errorf("perturb: PLenMS must be positive")
		}
		if c.AProb < 0 || c.AProb > 1 {
			return fmt.Errorf("perturb: AProb %g out of [0,1]", c.AProb)
		}
		if c.LIndex < 0 || c.LIndex > 1 {
			return fmt.Errorf("perturb: LIndex %g out of [0,1]", c.LIndex)
		}
	}
	if c.HorizonMS <= 0 && c.Threads > 0 {
		return fmt.Errorf("perturb: HorizonMS must be positive")
	}
	return nil
}

// Schedule is the merged piecewise-constant total load of all perturbation
// threads over the horizon.
type Schedule struct {
	starts  []float64 // segment start times, ascending, starts[0] == 0
	load    []float64 // total active load during the segment
	horizon float64
}

// New pre-generates a schedule from the configuration.
func New(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Threads == 0 {
		return &Schedule{starts: []float64{0}, load: []float64{0}, horizon: 1}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type edge struct {
		t     float64
		delta float64
	}
	var edges []edge
	for th := 0; th < cfg.Threads; th++ {
		t := 0.0
		for t < cfg.HorizonMS {
			length := (0.5 + rng.Float64()) * cfg.PLenMS
			active := rng.Float64() < cfg.AProb
			if active && cfg.LIndex > 0 {
				end := t + length
				if end > cfg.HorizonMS {
					end = cfg.HorizonMS
				}
				edges = append(edges, edge{t: t, delta: cfg.LIndex})
				edges = append(edges, edge{t: end, delta: -cfg.LIndex})
			}
			t += length
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })

	s := &Schedule{horizon: cfg.HorizonMS}
	cur := 0.0
	s.starts = append(s.starts, 0)
	s.load = append(s.load, 0)
	for _, e := range edges {
		cur += e.delta
		if cur < 0 {
			cur = 0
		}
		last := len(s.starts) - 1
		if s.starts[last] == e.t {
			s.load[last] = cur
			continue
		}
		s.starts = append(s.starts, e.t)
		s.load = append(s.load, cur)
	}
	return s, nil
}

// MustNew is New that panics on config error (for experiment tables).
func MustNew(cfg Config) *Schedule {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Unloaded returns a schedule with zero load everywhere.
func Unloaded() *Schedule {
	return &Schedule{starts: []float64{0}, load: []float64{0}, horizon: 1}
}

// LoadAt returns the total perturbation load at virtual time t (ms). Times
// beyond the horizon wrap around.
func (s *Schedule) LoadAt(t float64) float64 {
	t = s.wrap(t)
	i := sort.SearchFloat64s(s.starts, t)
	if i < len(s.starts) && s.starts[i] == t {
		return s.load[i]
	}
	return s.load[i-1]
}

// NextChange returns the first time strictly after t at which the load
// changes. Used by integrators stepping over piecewise-constant segments.
func (s *Schedule) NextChange(t float64) float64 {
	base := t - s.wrap(t)
	w := s.wrap(t)
	i := sort.SearchFloat64s(s.starts, w)
	if i < len(s.starts) && s.starts[i] == w {
		i++
	}
	if i < len(s.starts) {
		return base + s.starts[i]
	}
	return base + s.horizon
}

// MeanLoad returns the time-averaged load over the horizon.
func (s *Schedule) MeanLoad() float64 {
	var sum float64
	for i := range s.starts {
		end := s.horizon
		if i+1 < len(s.starts) {
			end = s.starts[i+1]
		}
		sum += s.load[i] * (end - s.starts[i])
	}
	return sum / s.horizon
}

func (s *Schedule) wrap(t float64) float64 {
	if s.horizon <= 0 {
		return 0
	}
	for t >= s.horizon {
		t -= s.horizon
	}
	if t < 0 {
		t = 0
	}
	return t
}
