// Package reconfig implements the Runtime Reconfiguration Unit (§2.5): it
// turns profiled PSE statistics into edge capacities under the handler's
// cost model, runs a max-flow/min-cut over the Unit Graph, and emits the
// (near-)optimal partitioning plan as a set of split-flag assignments.
package reconfig

import (
	"fmt"
	"sync/atomic"

	"methodpart/internal/costmodel"
	"methodpart/internal/graph"
	"methodpart/internal/partition"
	"methodpart/internal/wire"
)

// Unit selects partitioning plans for one compiled handler. The unit may
// live with the modulator, the demodulator, or a third party (§2.5); it only
// needs the compiled handler structure and the profiled statistics.
type Unit struct {
	c *partition.Compiled
	// env is the resource environment, held behind an atomic pointer:
	// SetEnvironment is commonly called from measurement loops while a
	// reconfiguration (SelectPlan) runs on the endpoint's goroutine, so
	// unlike the rest of the Unit it must not rely on caller serialization.
	env atomic.Pointer[costmodel.Environment]
	// ProfileAll keeps the profiling flag of every PSE set in emitted
	// plans; otherwise only the flagged split PSEs are profiled.
	ProfileAll bool
	// Policy is the SLO policy that picks the operating point off the
	// Pareto front. The zero value is Balanced: exactly the scalar
	// min-cut selection of releases before the front existed.
	Policy SLOPolicy
	// MaxCandidates caps the convex-cut enumeration behind the front;
	// 0 means DefaultMaxCandidates.
	MaxCandidates int
	// FlipMargin enables plan-flip hysteresis when > 0: a non-incumbent
	// front point must beat the incumbent cut on the policy's primary
	// objective by this fraction (e.g. 0.1 = 10% better) before a flip is
	// even considered. The zero value disables hysteresis entirely,
	// preserving the selection behavior of releases before it existed.
	FlipMargin float64
	// FlipConfirmations is how many consecutive selections the same
	// challenger must keep beating the incumbent by FlipMargin before the
	// plan actually flips (0 means DefaultFlipConfirmations). Only
	// consulted when FlipMargin > 0.
	FlipConfirmations int

	version uint64
	tripped map[int32]bool
	// lastCut is the previously chosen cut, for flip accounting; like
	// version/tripped it relies on caller serialization.
	lastCut []int32
	hasLast bool
	// pendingCut/pendingStreak is the hysteresis state: the challenger cut
	// currently beating the incumbent by the margin, and for how many
	// consecutive selections it has done so. Caller-serialized like lastCut.
	pendingCut    []int32
	pendingStreak int
	// policyFlips counts selections whose chosen cut differed from the
	// previous selection's. Read concurrently by metrics collectors.
	policyFlips atomic.Uint64
	// flipsSuppressed counts selections where the policy preferred a
	// non-incumbent cut but hysteresis held the incumbent (margin not met,
	// or confirmation streak still building). Read concurrently by metrics
	// collectors; feeds methodpart_flips_suppressed_total.
	flipsSuppressed atomic.Uint64

	// lastExplain is the most recent selection's Explanation. It is the one
	// piece of Unit state read from other goroutines (debug listeners,
	// status snapshots) while SelectPlan runs on the endpoint's own
	// goroutine, hence the atomic pointer where the rest of the Unit relies
	// on caller serialization.
	lastExplain atomic.Pointer[Explanation]
}

// Explanation records what one SelectPlan call saw and decided: the
// capacities the max-flow priced (after the breaker overlay), the cut it
// chose, and the version it stamped. It exists so an operator can answer
// "why did my plan flip?" from live state instead of re-deriving the
// min-cut by hand.
type Explanation struct {
	// Version is the plan version the selection produced.
	Version uint64
	// Cut is the chosen split set (sorted).
	Cut []int32
	// CutValue is the min-cut capacity in cost-model units.
	CutValue int64
	// Tripped lists the PSEs priced out by open circuit breakers (sorted).
	Tripped []int32
	// Capacities are the per-PSE edge capacities the max-flow saw, indexed
	// by PSE id — profiled capacities where statistics existed, static
	// estimates otherwise, graph.InfCapacity (or InfCapacity−1 for the raw
	// PSE) where tripped.
	Capacities map[int32]int64
	// Profiled is how many PSEs had live statistics backing their capacity.
	Profiled int
	// Policy is the SLO policy that picked the operating point.
	Policy SLOPolicy
	// Front is the Pareto front of candidate cuts (sorted by bytes, then
	// latency): the non-dominated points plus the pinned balanced
	// min-cut's point. Front[Chosen] is the point Cut was taken from.
	Front []FrontPoint
	// Chosen indexes the front point the policy selected.
	Chosen int
	// Env is the (sanitized) environment the selection priced costs under —
	// with live link estimation this is the measured environment, so an
	// operator can see which link the front believed in.
	Env costmodel.Environment
	// Suppressed reports that this selection's policy preference was
	// overridden by flip hysteresis: the policy preferred a different cut
	// but the incumbent was kept.
	Suppressed bool
	// PendingCut/PendingStreak expose the hysteresis state after this
	// selection: the challenger currently building a confirmation streak
	// (nil when none).
	PendingCut []int32
	// PendingStreak is how many consecutive selections PendingCut has beaten
	// the incumbent by the margin.
	PendingStreak int
	// FlipsSuppressed is the unit's cumulative suppressed-flip count as of
	// this selection.
	FlipsSuppressed uint64
}

// NewUnit creates a reconfiguration unit for the handler in the given
// environment.
func NewUnit(c *partition.Compiled, env costmodel.Environment) *Unit {
	u := &Unit{c: c, ProfileAll: true}
	env = env.Sanitize()
	u.env.Store(&env)
	return u
}

// SetEnvironment updates the resource environment used to weigh costs.
// Safe to call concurrently with SelectPlan; the update is atomic and a
// selection in flight keeps the environment it loaded. Degenerate fields
// (zero, negative, NaN, Inf — possible from an early or broken runtime
// measurement) are replaced with their defaults so a bad sample can never
// poison plan pricing.
func (u *Unit) SetEnvironment(env costmodel.Environment) {
	env = env.Sanitize()
	u.env.Store(&env)
}

// Environment returns the current environment. Safe for concurrent use.
func (u *Unit) Environment() costmodel.Environment { return *u.env.Load() }

// PolicyFlips returns how many selections chose a different cut than the
// selection before them. Safe for concurrent use; feeds the
// methodpart_policy_flips_total metric.
func (u *Unit) PolicyFlips() uint64 { return u.policyFlips.Load() }

// FlipsSuppressed returns how many selections preferred a non-incumbent
// cut but were held to the incumbent by hysteresis. Safe for concurrent
// use; feeds the methodpart_flips_suppressed_total metric.
func (u *Unit) FlipsSuppressed() uint64 { return u.flipsSuppressed.Load() }

// SetTripped replaces the set of PSEs whose circuit breaker is open. A
// tripped PSE's edge becomes (effectively) uncuttable, so the min-cut routes
// around it instead of re-selecting a split point whose continuations keep
// failing. Like the rest of the unit, not safe for concurrent use with
// SelectPlan; callers serialize.
func (u *Unit) SetTripped(ids []int32) {
	if len(ids) == 0 {
		u.tripped = nil
		return
	}
	u.tripped = make(map[int32]bool, len(ids))
	for _, id := range ids {
		u.tripped[id] = true
	}
}

// Tripped reports whether a PSE is currently excluded from the split set.
func (u *Unit) Tripped(id int32) bool { return u.tripped[id] }

// ObserveVersion fast-forwards the unit's version counter to at least v —
// the version of a plan installed behind the unit's back (e.g. a
// breaker-degraded plan the publisher forced locally, reported through
// feedback). Without this, the unit's next selection would carry a version
// the modulator has already passed and be rejected as stale. Like SelectPlan,
// not safe for concurrent use; callers serialize.
func (u *Unit) ObserveVersion(v uint64) {
	if v > u.version {
		u.version = v
	}
}

// SelectPlan computes the best valid partitioning for the profiled
// statistics (stats may be nil or partial; unprofiled PSEs fall back to
// their static estimates). It first runs the scalar max-flow/min-cut under
// the channel's cost model, then builds the Pareto front of candidate
// convex cuts and lets the Unit's SLO policy pick the operating point; the
// Balanced (zero-value) policy takes the scalar min-cut unchanged. It
// returns both the in-memory plan and its wire form.
func (u *Unit) SelectPlan(stats map[int32]costmodel.Stat) (*partition.Plan, *wire.Plan, error) {
	env := u.Environment()
	balCut, balValue, err := u.minCut(stats, env)
	if err != nil {
		return nil, nil, err
	}
	front, balIdx := u.buildFront(stats, env, balCut, balValue)
	chosen := choosePoint(front, balIdx, u.Policy)
	cut := front[chosen].Cut
	if !front[chosen].Balanced {
		// The enumeration guarantees validity by construction; verify
		// anyway and fall back to the proven balanced cut rather than
		// ship a leaking plan if that guarantee is ever broken.
		if err := u.c.ValidateSplitSet(cut); err != nil {
			chosen = balIdx
			cut = balCut
		}
	}
	chosen, suppressed := u.applyHysteresis(front, chosen)
	cut = front[chosen].Cut
	front[chosen].Chosen = true
	if u.hasLast && !equalCut(u.lastCut, cut) {
		u.policyFlips.Add(1)
	}
	u.lastCut = append(u.lastCut[:0], cut...)
	u.hasLast = true
	u.version++
	u.lastExplain.Store(u.explain(cut, front[chosen].CutValue, stats, env, front, chosen, suppressed))
	var profile []int32
	if u.ProfileAll {
		profile = partition.AllProfileIDs(u.c)
	} else {
		profile = cut
	}
	plan, err := partition.NewPlan(u.c.NumPSEs(), u.version, cut, profile)
	if err != nil {
		return nil, nil, err
	}
	wp := &wire.Plan{
		Handler: u.c.Prog.Name,
		Version: u.version,
		Split:   plan.SplitIDs(),
		Profile: plan.ProfileIDs(),
	}
	return plan, wp, nil
}

// DefaultFlipConfirmations is how many consecutive margin-beating
// selections a challenger needs before the plan flips, when
// Unit.FlipConfirmations is 0.
const DefaultFlipConfirmations = 3

// applyHysteresis dampens plan dithering: once a cut is incumbent, a
// different front point only takes over after beating the incumbent on the
// policy's primary objective by FlipMargin for FlipConfirmations
// consecutive selections. It returns the (possibly overridden) front index
// and whether the policy's preference was suppressed. Disabled (FlipMargin
// <= 0), on the first selection, and when the incumbent has left the front
// (e.g. priced out by a tripped breaker — holding a non-viable plan would
// be worse than any flip), the policy's choice passes through untouched.
func (u *Unit) applyHysteresis(front []FrontPoint, chosen int) (int, bool) {
	reset := func() { u.pendingCut, u.pendingStreak = nil, 0 }
	if u.FlipMargin <= 0 || !u.hasLast {
		reset()
		return chosen, false
	}
	if equalCut(u.lastCut, front[chosen].Cut) {
		// Policy re-confirmed the incumbent; any challenger streak dies.
		reset()
		return chosen, false
	}
	incumbent := -1
	for i := range front {
		if equalCut(front[i].Cut, u.lastCut) {
			incumbent = i
			break
		}
	}
	if incumbent < 0 {
		reset()
		return chosen, false
	}
	confirm := u.FlipConfirmations
	if confirm <= 0 {
		confirm = DefaultFlipConfirmations
	}
	// Margin test on the policy's primary objective: the challenger must be
	// better by at least the configured fraction, not merely better.
	beats := policyPrimary(front[chosen], u.Policy) < policyPrimary(front[incumbent], u.Policy)*(1-u.FlipMargin)
	if !beats {
		reset()
		u.flipsSuppressed.Add(1)
		return incumbent, true
	}
	if u.pendingStreak > 0 && equalCut(u.pendingCut, front[chosen].Cut) {
		u.pendingStreak++
	} else {
		u.pendingCut = append(u.pendingCut[:0], front[chosen].Cut...)
		u.pendingStreak = 1
	}
	if u.pendingStreak >= confirm {
		reset()
		return chosen, false
	}
	u.flipsSuppressed.Add(1)
	return incumbent, true
}

// explain materialises the Explanation for a completed selection. Called
// after u.version is advanced, so the explanation carries the stamped
// version.
func (u *Unit) explain(cut []int32, value int64, stats map[int32]costmodel.Stat, env costmodel.Environment, front []FrontPoint, chosen int, suppressed bool) *Explanation {
	ex := &Explanation{
		Version:         u.version,
		Cut:             append([]int32(nil), cut...),
		CutValue:        value,
		Capacities:      make(map[int32]int64, u.c.NumPSEs()),
		Policy:          u.Policy,
		Front:           front,
		Chosen:          chosen,
		Env:             env,
		Suppressed:      suppressed,
		PendingCut:      append([]int32(nil), u.pendingCut...),
		PendingStreak:   u.pendingStreak,
		FlipsSuppressed: u.flipsSuppressed.Load(),
	}
	for id := int32(0); int(id) < u.c.NumPSEs(); id++ {
		ex.Capacities[id] = u.capacityFor(id, stats, env)
		if st, ok := stats[id]; ok && st.Count > 0 {
			ex.Profiled++
		}
		if u.tripped[id] {
			ex.Tripped = append(ex.Tripped, id)
		}
	}
	ex.Tripped = partition.SortedIDs(ex.Tripped)
	return ex
}

// LastExplanation returns the most recent selection's Explanation, or nil
// before the first SelectPlan. Unlike the rest of the Unit it is safe to
// call from any goroutine; the returned value is a snapshot the caller
// must not mutate.
func (u *Unit) LastExplanation() *Explanation {
	return u.lastExplain.Load()
}

// InitialPlan selects a plan purely from static cost estimates, for use
// before any profile exists (deployment time).
func (u *Unit) InitialPlan() (*partition.Plan, *wire.Plan, error) {
	return u.SelectPlan(nil)
}

// Capacity returns the min-cut capacity the unit would assign to a PSE
// under the current statistics (exported for tests and diagnostics).
func (u *Unit) Capacity(id int32, stats map[int32]costmodel.Stat) int64 {
	return u.capacity(id, stats, u.Environment())
}

func (u *Unit) capacity(id int32, stats map[int32]costmodel.Stat, env costmodel.Environment) int64 {
	pse, ok := u.c.PSE(id)
	if !ok {
		return 0
	}
	if st, ok := stats[id]; ok && st.Count > 0 {
		return u.c.Model.Capacity(st, env)
	}
	return u.c.Model.StaticCapacity(pse.Static)
}

// capacityFor is capacity with the breaker overlay applied: a tripped PSE's
// edge is saturated to infinite capacity so the max-flow never cuts it. The
// raw PSE is special — it is the degradation floor, so when even raw is
// tripped it gets InfCapacity−1: still astronomically expensive (any healthy
// split wins) but keeping the finite-cut invariant that makes "worst case:
// ship raw" always selectable.
func (u *Unit) capacityFor(id int32, stats map[int32]costmodel.Stat, env costmodel.Environment) int64 {
	if u.tripped[id] {
		if id == partition.RawPSEID {
			return graph.InfCapacity - 1
		}
		return graph.InfCapacity
	}
	return u.capacity(id, stats, env)
}

// minCut builds the flow network and extracts the minimal cut restricted to
// PSE edges. The synthetic raw PSE is the source's only outgoing edge, so a
// finite cut always exists (worst case: ship raw events).
func (u *Unit) minCut(stats map[int32]costmodel.Stat, env costmodel.Environment) ([]int32, int64, error) {
	ug := u.c.Analysis.UG
	n := ug.Exit + 1
	source := n
	sink := n + 1
	fn := graph.NewFlowNetwork(n + 2)

	// Raw PSE: source → start node.
	if err := fn.AddEdge(source, ug.Start, u.capacityFor(partition.RawPSEID, stats, env), int(partition.RawPSEID)); err != nil {
		return nil, 0, err
	}
	// UG edges: PSEs get their profiled/static capacity, everything else
	// is uncuttable.
	for _, e := range ug.Edges() {
		if id, ok := u.c.PSEByEdge(e); ok {
			if err := fn.AddEdge(e.From, e.To, u.capacityFor(id, stats, env), int(id)); err != nil {
				return nil, 0, err
			}
			continue
		}
		if err := fn.AddEdge(e.From, e.To, graph.InfCapacity, -1); err != nil {
			return nil, 0, err
		}
	}
	// StopNodes (and the exit) drain to the sink.
	for stop := range u.c.Analysis.Stops {
		if err := fn.AddEdge(stop, sink, graph.InfCapacity, -1); err != nil {
			return nil, 0, err
		}
	}

	cutEdges, value := fn.MinCut(source, sink)
	if value >= graph.InfCapacity {
		return nil, 0, fmt.Errorf("reconfig: no finite cut for %s", u.c.Prog.Name)
	}
	ids := make([]int32, 0, len(cutEdges))
	for _, ce := range cutEdges {
		if ce.ID < 0 {
			return nil, 0, fmt.Errorf("reconfig: min cut crosses non-PSE edge (%d,%d)", ce.From, ce.To)
		}
		ids = append(ids, int32(ce.ID))
	}
	return partition.SortedIDs(ids), value, nil
}
