package reconfig_test

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/partition"
	"methodpart/internal/reconfig"
	"methodpart/internal/testprog"
)

func compilePush(t *testing.T, model costmodel.Model) *partition.Compiled {
	t.Helper()
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, reg, model)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// pse finds the PSE id with the given edge endpoints.
func pse(t *testing.T, c *partition.Compiled, from, to int) int32 {
	t.Helper()
	for id := int32(0); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if p.Edge.From == from && p.Edge.To == to {
			return id
		}
	}
	t.Fatalf("no PSE for Edge(%d,%d): %+v", from, to, c.PSEs)
	return -1
}

func TestInitialPlanIsValid(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	plan, wp, err := u.InitialPlan()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateSplitSet(plan.SplitIDs()); err != nil {
		t.Fatalf("initial plan invalid: %v", err)
	}
	if wp.Version != plan.Version() || wp.Handler != "push" {
		t.Fatalf("wire plan = %+v", wp)
	}
}

// TestPlanFollowsImageSize reproduces the paper's adaptation logic: when
// profiled continuation sizes say the resized image (100x100) is smaller
// than the incoming image, the cut moves after the transform; when incoming
// images are small, the cut moves before it.
func TestPlanFollowsImageSize(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())

	preID := pse(t, c, 2, 3)    // before the transform: ships the original
	postID := pse(t, c, 4, 5)   // after the transform: ships 100x100
	filterID := pse(t, c, 1, 7) // filter path: ships nothing
	rawID := partition.RawPSEID // ships the raw event

	// Large incoming images (200x200 = 40000 B) vs resized 10000 B:
	// the optimizer must cut after the transform.
	large := map[int32]costmodel.Stat{
		rawID:    {Count: 100, Prob: 1, Bytes: 40100},
		preID:    {Count: 100, Prob: 1, Bytes: 40100},
		postID:   {Count: 100, Prob: 1, Bytes: 10100},
		filterID: {Count: 0},
	}
	plan, _, err := u.SelectPlan(large)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Split(postID) {
		t.Fatalf("large images: plan %v does not cut after transform (want PSE %d)", plan, postID)
	}
	if err := c.ValidateSplitSet(plan.SplitIDs()); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}

	// Small incoming images (80x80 = 6400 B) vs resized 10000 B:
	// cutting before the transform is cheaper.
	small := map[int32]costmodel.Stat{
		rawID:    {Count: 100, Prob: 1, Bytes: 6500},
		preID:    {Count: 100, Prob: 1, Bytes: 6500},
		postID:   {Count: 100, Prob: 1, Bytes: 10100},
		filterID: {Count: 0},
	}
	plan2, _, err := u.SelectPlan(small)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Split(postID) {
		t.Fatalf("small images: plan %v still cuts after transform", plan2)
	}
	if !(plan2.Split(preID) || plan2.Raw()) {
		t.Fatalf("small images: plan %v does not cut early", plan2)
	}
	if plan2.Version() <= plan.Version() {
		t.Fatalf("version did not advance: %d then %d", plan.Version(), plan2.Version())
	}
}

// TestExecTimePlanBalancesLoad: under the exec-time model, a slow receiver
// must pull the cut later (more work at the sender) and a slow sender must
// push it earlier.
func TestExecTimePlanBalancesLoad(t *testing.T) {
	c := compilePush(t, costmodel.NewExecTime())
	stats := make(map[int32]costmodel.Stat)
	// Fabricate a profile: total work 10000 units; PSE i sits at modWork
	// proportional to its resume node so later PSEs mean more sender work.
	maxNode := 0
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if p.Edge.To > maxNode {
			maxNode = p.Edge.To
		}
	}
	const total = 10000.0
	for id := int32(0); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		frac := 0.0
		if p.Edge.To > 0 && maxNode > 0 {
			frac = float64(p.Edge.To) / float64(maxNode)
		}
		stats[id] = costmodel.Stat{
			Count:     100,
			Prob:      1,
			Bytes:     1000,
			ModWork:   total * frac,
			DemodWork: total * (1 - frac),
		}
	}

	slowReceiver := costmodel.Environment{SenderSpeed: 1000, ReceiverSpeed: 100, Bandwidth: 1e9, LatencyMS: 0}
	uA := reconfig.NewUnit(c, slowReceiver)
	planA, _, err := uA.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}

	slowSender := costmodel.Environment{SenderSpeed: 100, ReceiverSpeed: 1000, Bandwidth: 1e9, LatencyMS: 0}
	uB := reconfig.NewUnit(c, slowSender)
	planB, _, err := uB.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}

	// Compare the mean resume-node position of the two cuts.
	meanPos := func(p *partition.Plan) float64 {
		ids := p.SplitIDs()
		if len(ids) == 0 {
			return 0
		}
		var sum float64
		for _, id := range ids {
			pp, _ := c.PSE(id)
			sum += float64(pp.Edge.To)
		}
		return sum / float64(len(ids))
	}
	if meanPos(planA) <= meanPos(planB) {
		t.Fatalf("slow receiver cut at %.1f, slow sender at %.1f; want later cut for slow receiver (plans %v vs %v)",
			meanPos(planA), meanPos(planB), planA, planB)
	}
}

func TestCapacityFallsBackToStatic(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	// The filter-path PSE hands over nothing: its static capacity is 0.
	if got := u.Capacity(pse(t, c, 1, 7), nil); got != 0 {
		t.Fatalf("filter PSE static capacity = %d, want 0", got)
	}
	// The pre-transform PSE ships the (dynamically sized) event.
	if got := u.Capacity(pse(t, c, 2, 3), nil); got <= 0 {
		t.Fatalf("pre-transform static capacity = %d", got)
	}
	if got := u.Capacity(99, nil); got != 0 {
		t.Fatalf("unknown PSE capacity = %d", got)
	}
}

func TestProfileAllFlag(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	u.ProfileAll = false
	plan, _, err := u.InitialPlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ProfileIDs()) != len(plan.SplitIDs()) {
		t.Fatalf("profile ids = %v, split ids = %v", plan.ProfileIDs(), plan.SplitIDs())
	}
}

// TestObserveVersionFastForwards: after a plan is installed behind the
// unit's back (the publisher's breaker-degraded plan, reported through
// feedback), the unit's next selection must carry a version past it —
// otherwise the modulator rejects it as stale.
func TestObserveVersionFastForwards(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	if _, _, err := u.SelectPlan(nil); err != nil {
		t.Fatal(err)
	}
	u.ObserveVersion(10)
	next, _, err := u.SelectPlan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() <= 10 {
		t.Fatalf("version = %d, want > 10 after ObserveVersion(10)", next.Version())
	}
	// Observing an older version must not roll the counter back.
	u.ObserveVersion(3)
	last, _, err := u.SelectPlan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if last.Version() <= next.Version() {
		t.Fatalf("version rolled back: %d then %d", next.Version(), last.Version())
	}
}
