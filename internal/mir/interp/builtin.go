// Package interp executes MIR programs. Its machine can run a handler to
// completion, stop it at an arbitrary control-flow edge (the modulator side
// of a split), and resume it at an arbitrary node from a register snapshot
// (the demodulator side) — the execution substrate for Remote Continuation.
package interp

import (
	"fmt"
	"sort"

	"methodpart/internal/mir"
)

// BuiltinFunc is the host implementation of a callable MIR function.
type BuiltinFunc func(env *Env, args []mir.Value) (mir.Value, error)

// CostFunc estimates the work units a builtin consumes for given arguments.
// Work units are the abstract CPU cost unit used by the execution-time cost
// model and the simulation clock.
type CostFunc func(args []mir.Value) int64

// Builtin describes a host function callable from MIR via OpCall.
type Builtin struct {
	// Name is the function name as written in handler source.
	Name string
	// Native marks the function as host-native in the paper's sense:
	// any instruction invoking it is a StopNode and must execute at the
	// receiver (e.g. displayImage on the handheld).
	Native bool
	// Fn is the implementation.
	Fn BuiltinFunc
	// Cost optionally estimates work units; if nil the call costs 1 unit.
	Cost CostFunc
}

// Registry holds the builtins available to handlers. Registries compose:
// the event system seeds one with the application's processing functions.
type Registry struct {
	m map[string]*Builtin
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Builtin)}
}

// Register adds a builtin. Re-registering a name is an error.
func (r *Registry) Register(b Builtin) error {
	if b.Name == "" {
		return fmt.Errorf("interp: builtin with empty name")
	}
	if b.Fn == nil {
		return fmt.Errorf("interp: builtin %q has nil implementation", b.Name)
	}
	if _, dup := r.m[b.Name]; dup {
		return fmt.Errorf("interp: duplicate builtin %q", b.Name)
	}
	bb := b
	r.m[b.Name] = &bb
	return nil
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(b Builtin) {
	if err := r.Register(b); err != nil {
		panic(err)
	}
}

// Lookup returns the named builtin.
func (r *Registry) Lookup(name string) (*Builtin, bool) {
	if r == nil {
		return nil, false
	}
	b, ok := r.m[name]
	return b, ok
}

// IsNative reports whether the named builtin exists and is native.
// Unknown functions are treated as native so the static analysis errs on the
// safe side (they become StopNodes).
func (r *Registry) IsNative(name string) bool {
	b, ok := r.Lookup(name)
	if !ok {
		return true
	}
	return b.Native
}

// Names returns the sorted builtin names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Env is the execution environment shared by machine runs: class table,
// builtins, global variables and resource limits.
type Env struct {
	// Classes resolves class names for new/instanceof/cast.
	Classes *mir.ClassTable
	// Builtins resolves call targets.
	Builtins *Registry
	// Globals holds mutable-outside-the-handler state (OpGetGlobal /
	// OpSetGlobal). Access from a handler makes the node a StopNode.
	Globals map[string]mir.Value
	// MaxSteps bounds a single run segment; 0 means DefaultMaxSteps.
	MaxSteps int64
	// MaxWork bounds the work units a single run segment may consume
	// before it is cancelled with ErrWorkBudget; 0 means unbounded. Steps
	// count instructions, work counts cost-weighted effort (a builtin call
	// can consume millions of work units in one step), so MaxWork is the
	// budget that actually stops a runaway continuation from wedging its
	// host.
	MaxWork int64
}

// DefaultMaxSteps is the per-segment step bound when Env.MaxSteps is zero.
const DefaultMaxSteps = 50_000_000

// NewEnv builds an environment with an empty globals map.
func NewEnv(classes *mir.ClassTable, builtins *Registry) *Env {
	return &Env{
		Classes:  classes,
		Builtins: builtins,
		Globals:  make(map[string]mir.Value),
	}
}

func (e *Env) maxSteps() int64 {
	if e.MaxSteps > 0 {
		return e.MaxSteps
	}
	return DefaultMaxSteps
}
