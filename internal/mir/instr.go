package mir

import (
	"fmt"
	"strings"
)

// Op identifies an instruction opcode.
type Op uint8

// Instruction opcodes. Each MIR instruction is one node of the Unit Graph.
const (
	OpConst      Op = iota + 1 // Dst = Lit
	OpMove                     // Dst = Src
	OpBin                      // Dst = Src <Bin> Src2
	OpUn                       // Dst = <Un> Src
	OpGoto                     // goto Target
	OpIf                       // if Src goto Target
	OpIfNot                    // ifnot Src goto Target
	OpCall                     // Dst = Fn(Args...)   (Dst optional)
	OpReturn                   // return [Src]
	OpNew                      // Dst = new Class
	OpGetField                 // Dst = Src.Field
	OpSetField                 // Dst.Field = Src     (Dst is the object, used not defined)
	OpNewArray                 // Dst = new ElemKind[Src]
	OpArrGet                   // Dst = Src[Src2]
	OpArrSet                   // Dst[Src2] = Src     (Dst is the array, used not defined)
	OpInstanceOf               // Dst = Src instanceof Class
	OpCast                     // Dst = (Class) Src
	OpLen                      // Dst = len(Src)
	OpGetGlobal                // Dst = global Field  (StopNode: mutable outside the handler)
	OpSetGlobal                // global Field = Src  (StopNode)
)

// BinKind identifies a binary operator for OpBin.
type BinKind uint8

// Binary operators.
const (
	BinAdd BinKind = iota + 1
	BinSub
	BinMul
	BinDiv
	BinMod
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAnd
	BinOr
)

// UnKind identifies a unary operator for OpUn.
type UnKind uint8

// Unary operators.
const (
	UnNeg UnKind = iota + 1
	UnNot
	UnI2F // int -> float
	UnF2I // float -> int (truncating)
)

var binNames = map[BinKind]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div", BinMod: "mod",
	BinEq: "eq", BinNe: "ne", BinLt: "lt", BinLe: "le", BinGt: "gt", BinGe: "ge",
	BinAnd: "and", BinOr: "or",
}

var unNames = map[UnKind]string{
	UnNeg: "neg", UnNot: "not", UnI2F: "i2f", UnF2I: "f2i",
}

// String returns the assembler mnemonic of the operator.
func (b BinKind) String() string {
	if s, ok := binNames[b]; ok {
		return s
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// String returns the assembler mnemonic of the operator.
func (u UnKind) String() string {
	if s, ok := unNames[u]; ok {
		return s
	}
	return fmt.Sprintf("un(%d)", uint8(u))
}

// BinKindFromString parses a binary operator mnemonic.
func BinKindFromString(s string) (BinKind, bool) {
	for k, n := range binNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// UnKindFromString parses a unary operator mnemonic.
func UnKindFromString(s string) (UnKind, bool) {
	for k, n := range unNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// Instr is a single MIR instruction. The meaning of the operand fields
// depends on Op; see the opcode comments. Labels attach to instructions and
// are referenced by Target.
type Instr struct {
	// Op is the opcode.
	Op Op
	// Label optionally names this instruction as a branch target.
	Label string
	// Dst is the destination register (or the object/array register for
	// OpSetField/OpArrSet, where it is read, not written).
	Dst string
	// Src is the primary source register.
	Src string
	// Src2 is the secondary source register (OpBin right operand,
	// OpArrGet/OpArrSet index).
	Src2 string
	// Args are the argument registers of OpCall.
	Args []string
	// Lit is the literal of OpConst.
	Lit Value
	// Bin is the operator of OpBin.
	Bin BinKind
	// Un is the operator of OpUn.
	Un UnKind
	// Fn is the builtin function name of OpCall.
	Fn string
	// Class is the class name of OpNew/OpInstanceOf/OpCast.
	Class string
	// Field is the field name of OpGetField/OpSetField and the global name
	// of OpGetGlobal/OpSetGlobal.
	Field string
	// ElemKind is the element kind of OpNewArray (KindInt, KindFloat or
	// KindBytes's byte for bytes arrays — use KindBytes to allocate Bytes).
	ElemKind Kind
	// Target is the label targeted by OpGoto/OpIf/OpIfNot.
	Target string
}

// Uses returns the registers read by the instruction.
func (in *Instr) Uses() []string {
	switch in.Op {
	case OpConst, OpNew, OpGoto, OpGetGlobal:
		return nil
	case OpMove, OpUn, OpGetField, OpInstanceOf, OpCast, OpLen, OpSetGlobal:
		return []string{in.Src}
	case OpBin:
		return []string{in.Src, in.Src2}
	case OpIf, OpIfNot:
		return []string{in.Src}
	case OpCall:
		out := make([]string, len(in.Args))
		copy(out, in.Args)
		return out
	case OpReturn:
		if in.Src == "" {
			return nil
		}
		return []string{in.Src}
	case OpSetField:
		return []string{in.Dst, in.Src}
	case OpNewArray:
		return []string{in.Src}
	case OpArrGet:
		return []string{in.Src, in.Src2}
	case OpArrSet:
		return []string{in.Dst, in.Src2, in.Src}
	default:
		return nil
	}
}

// Defs returns the registers written by the instruction.
func (in *Instr) Defs() []string {
	switch in.Op {
	case OpConst, OpMove, OpBin, OpUn, OpNew, OpGetField, OpNewArray,
		OpArrGet, OpInstanceOf, OpCast, OpLen, OpGetGlobal:
		return []string{in.Dst}
	case OpCall:
		if in.Dst == "" {
			return nil
		}
		return []string{in.Dst}
	default:
		return nil
	}
}

// IsBranch reports whether the instruction may transfer control to Target.
func (in *Instr) IsBranch() bool {
	return in.Op == OpGoto || in.Op == OpIf || in.Op == OpIfNot
}

// IsTerminator reports whether control never falls through to the next
// instruction.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpGoto || in.Op == OpReturn
}

// String renders the instruction in assembler syntax (without its label).
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %s", in.Dst, in.Lit)
	case OpMove:
		return fmt.Sprintf("%s = move %s", in.Dst, in.Src)
	case OpBin:
		return fmt.Sprintf("%s = %s %s %s", in.Dst, in.Bin, in.Src, in.Src2)
	case OpUn:
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Un, in.Src)
	case OpGoto:
		return fmt.Sprintf("goto %s", in.Target)
	case OpIf:
		return fmt.Sprintf("if %s goto %s", in.Src, in.Target)
	case OpIfNot:
		return fmt.Sprintf("ifnot %s goto %s", in.Src, in.Target)
	case OpCall:
		call := fmt.Sprintf("call %s %s", in.Fn, strings.Join(in.Args, " "))
		if len(in.Args) == 0 {
			call = "call " + in.Fn
		}
		if in.Dst != "" {
			return in.Dst + " = " + call
		}
		return call
	case OpReturn:
		if in.Src == "" {
			return "return"
		}
		return "return " + in.Src
	case OpNew:
		return fmt.Sprintf("%s = new %s", in.Dst, in.Class)
	case OpGetField:
		return fmt.Sprintf("%s = getfield %s %s", in.Dst, in.Src, in.Field)
	case OpSetField:
		return fmt.Sprintf("setfield %s %s %s", in.Dst, in.Field, in.Src)
	case OpNewArray:
		return fmt.Sprintf("%s = newarray %s %s", in.Dst, in.ElemKind, in.Src)
	case OpArrGet:
		return fmt.Sprintf("%s = arrget %s %s", in.Dst, in.Src, in.Src2)
	case OpArrSet:
		return fmt.Sprintf("arrset %s %s %s", in.Dst, in.Src2, in.Src)
	case OpInstanceOf:
		return fmt.Sprintf("%s = instanceof %s %s", in.Dst, in.Src, in.Class)
	case OpCast:
		return fmt.Sprintf("%s = cast %s %s", in.Dst, in.Src, in.Class)
	case OpLen:
		return fmt.Sprintf("%s = len %s", in.Dst, in.Src)
	case OpGetGlobal:
		return fmt.Sprintf("%s = getglobal %s", in.Dst, in.Field)
	case OpSetGlobal:
		return fmt.Sprintf("setglobal %s %s", in.Field, in.Src)
	default:
		return fmt.Sprintf("op(%d)", uint8(in.Op))
	}
}
