package obsv

import (
	"encoding/json"
	"testing"
)

// TestSplitStatusGoldenJSON pins the /debug/split wire schema. The
// MinCutStatus/FrontPointStatus JSON is an operator-facing contract
// (documented in OBSERVABILITY.md); renaming or retyping a field must
// show up as a diff here, not as a silently broken dashboard.
func TestSplitStatusGoldenJSON(t *testing.T) {
	doc := EndpointStatus{
		Role: "subscriber",
		Name: "client-1",
		Channels: []ChannelStatus{{
			ID:          "client-1",
			Channel:     "images",
			Handler:     "push",
			PlanVersion: 4,
			Split:       []int32{1, 3},
			Metrics:     map[string]uint64{"events_in_total": 120},
			PSEs: []PSEStatus{{
				ID: 0, From: 0, To: 1, InSplit: false, Profiled: true,
				Count: 120, Bytes: 40068, ModWork: 0, DemodWork: 52000, Prob: 1,
			}},
			LastMinCut: &MinCutStatus{
				Version:    4,
				Cut:        []int32{1, 3},
				CutValue:   25675,
				Capacities: map[int32]int64{0: 40068, 1: 25600, 3: 75},
				Profiled:   3,
				Policy:     "cost-first",
				Front: []FrontPointStatus{
					{
						Cut: []int32{1, 3}, Bytes: 25675, LatencyMS: 70.58,
						SenderWork: 45000, ReceiverWork: 5000, FailureRate: 0,
						CutValue: 25675, Balanced: true, Chosen: true,
					},
					{
						Cut: []int32{0}, Bytes: 40068, LatencyMS: 24.83,
						SenderWork: 0, ReceiverWork: 52000, FailureRate: 0,
						CutValue: 40068,
					},
				},
				Chosen: 0,
				Env: &EnvStatus{
					SenderSpeed:   1000,
					ReceiverSpeed: 1000,
					Bandwidth:     320,
					LatencyMS:     12.5,
				},
				Suppressed:      true,
				PendingCut:      []int32{0},
				PendingStreak:   2,
				FlipsSuppressed: 5,
			},
			Link: &LinkStatus{
				RTTMS:               25,
				BandwidthBytesPerMS: 320,
				RTTSamples:          14,
				BandwidthSamples:    13,
				Warm:                true,
			},
		}},
	}

	const golden = `{
  "role": "subscriber",
  "name": "client-1",
  "channels": [
    {
      "id": "client-1",
      "channel": "images",
      "handler": "push",
      "plan_version": 4,
      "split": [
        1,
        3
      ],
      "queue_len": 0,
      "metrics": {
        "events_in_total": 120
      },
      "pses": [
        {
          "id": 0,
          "from": 0,
          "to": 1,
          "in_split": false,
          "profiled": true,
          "count": 120,
          "bytes": 40068,
          "mod_work": 0,
          "demod_work": 52000,
          "prob": 1,
          "failures": 0
        }
      ],
      "last_min_cut": {
        "version": 4,
        "cut": [
          1,
          3
        ],
        "cut_value": 25675,
        "capacities": {
          "0": 40068,
          "1": 25600,
          "3": 75
        },
        "profiled": 3,
        "policy": "cost-first",
        "front": [
          {
            "cut": [
              1,
              3
            ],
            "bytes": 25675,
            "latency_ms": 70.58,
            "sender_work": 45000,
            "receiver_work": 5000,
            "failure_rate": 0,
            "cut_value": 25675,
            "balanced": true,
            "chosen": true
          },
          {
            "cut": [
              0
            ],
            "bytes": 40068,
            "latency_ms": 24.83,
            "sender_work": 0,
            "receiver_work": 52000,
            "failure_rate": 0,
            "cut_value": 40068
          }
        ],
        "env": {
          "sender_speed": 1000,
          "receiver_speed": 1000,
          "bandwidth": 320,
          "latency_ms": 12.5
        },
        "suppressed": true,
        "pending_cut": [
          0
        ],
        "pending_streak": 2,
        "flips_suppressed": 5
      },
      "link": {
        "rtt_ms": 25,
        "bandwidth_bytes_per_ms": 320,
        "rtt_samples": 14,
        "bandwidth_samples": 13,
        "warm": true
      }
    }
  ]
}`

	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Errorf("/debug/split schema drifted.\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// The document must round-trip: an operator tool that decodes and
	// re-encodes the status must not lose the front.
	var back EndpointStatus
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	mc := back.Channels[0].LastMinCut
	if mc == nil || len(mc.Front) != 2 || !mc.Front[0].Balanced || !mc.Front[0].Chosen {
		t.Errorf("round trip lost front detail: %+v", mc)
	}
	if mc.Policy != "cost-first" {
		t.Errorf("round trip policy = %q", mc.Policy)
	}
	if mc.Env == nil || mc.Env.Bandwidth != 320 || !mc.Suppressed || mc.PendingStreak != 2 || mc.FlipsSuppressed != 5 {
		t.Errorf("round trip lost hysteresis detail: %+v", mc)
	}
	if l := back.Channels[0].Link; l == nil || l.RTTMS != 25 || l.BandwidthSamples != 13 || !l.Warm {
		t.Errorf("round trip lost link detail: %+v", l)
	}
}
