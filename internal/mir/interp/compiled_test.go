package interp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
)

// compileOrDie lowers a parsed program with the given watch set.
func compileOrDie(t *testing.T, prog *mir.Program, watch []Edge) *Code {
	t.Helper()
	code, err := Compile(prog, CompileOptions{Watch: watch})
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// errText renders an error for exact comparison ("" for nil).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffCase is one program run through both engines.
type diffCase struct {
	name string
	src  string
	args []mir.Value
	// reg optionally supplies a registry factory (fresh per engine so
	// side-effecting builtins cannot couple the two runs).
	reg func() *Registry
	// maxSteps/maxWork set resource bounds when non-zero.
	maxSteps int64
	maxWork  int64
}

// diffEnv builds a fresh environment for one engine run of a case.
func diffEnv(t *testing.T, u *asm.Unit, c diffCase) *Env {
	t.Helper()
	tbl, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if c.reg != nil {
		reg = c.reg()
	}
	env := NewEnv(tbl, reg)
	if c.maxSteps != 0 {
		env.MaxSteps = c.maxSteps
	}
	if c.maxWork != 0 {
		env.MaxWork = c.maxWork
	}
	return env
}

// copyArgs deep-copies the argument list so engines cannot observe each
// other's mutations of arrays or objects.
func copyArgs(args []mir.Value) []mir.Value {
	out := make([]mir.Value, len(args))
	for i, a := range args {
		out[i] = mir.Copy(a)
	}
	return out
}

// diffCases is the differential corpus: every opcode family, the promotion
// and error paths, and the resource bounds.
var diffCases = []diffCase{
	{name: "int arithmetic", src: `
func f(a, b) {
  s = add a b
  d = sub a b
  p = mul a b
  q = div a b
  r = mod a b
  t0 = mul p q
  t1 = add t0 r
  t2 = add t1 s
  t3 = add t2 d
  return t3
}
`, args: []mir.Value{mir.Int(17), mir.Int(5)}},
	{name: "float promotion", src: `
func f(a, b) {
  s = add a b
  d = sub a b
  p = mul s d
  q = div p b
  lt = lt a b
  ge = ge p q
  both = and lt ge
  return both
}
`, args: []mir.Value{mir.Int(3), mir.Float(0.5)}},
	{name: "string concat and compare", src: `
func f(a, b) {
  s = add a b
  e = eq s a
  n = ne a b
  l = lt a b
  g = len s
  return g
}
`, args: []mir.Value{mir.Str("foo"), mir.Str("bar")}},
	{name: "loop over int array", src: `
func sum(arr) {
  n = len arr
  i = const 0
  acc = const 0
loop:
  done = ge i n
  if done goto finish
  v = arrget arr i
  acc = add acc v
  one = const 1
  i = add i one
  goto loop
finish:
  return acc
}
`, args: []mir.Value{mir.IntArray{5, 4, 3, 2, 1, 0, -1}}},
	{name: "arrays of every kind", src: `
func f(n) {
  a = newarray int n
  b = newarray float n
  c = newarray bytes n
  i = const 1
  v = const 7
  arrset a i v
  fv = const 2.5
  arrset b i fv
  bv = const 200
  arrset c i bv
  x = arrget a i
  y = arrget b i
  z = arrget c i
  fx = i2f x
  s = add fx y
  zi = i2f z
  s = add s zi
  r = f2i s
  return r
}
`, args: []mir.Value{mir.Int(4)}},
	{name: "objects and casts", src: `
class P {
  x int
  y int
}

func f(e) {
  is = instanceof e P
  ifnot is goto other
  p = cast e P
  gx = getfield p x
  q = new P
  setfield q x gx
  two = const 2
  setfield q y two
  gy = getfield q y
  s = add gx gy
  return s
other:
  zero = const 0
  return zero
}
`, args: []mir.Value{func() mir.Value {
		o := mir.NewObject("P")
		o.Fields["x"] = mir.Int(40)
		o.Fields["y"] = mir.Int(0)
		return o
	}()}},
	{name: "instanceof filter path", src: `
class P {
  x int
}

func f(e) {
  is = instanceof e P
  ifnot is goto other
  one = const 1
  return one
other:
  zero = const 0
  return zero
}
`, args: []mir.Value{mir.Int(9)}},
	{name: "globals", src: `
func f(x) {
  g0 = getglobal counter
  setglobal counter x
  g1 = getglobal counter
  eqn = eq g0 g1
  return eqn
}
`, args: []mir.Value{mir.Int(5)}},
	{name: "builtin with cost", src: `
func f(x) {
  y = call double x
  z = call double y
  return z
}
`, args: []mir.Value{mir.Int(21)}, reg: func() *Registry {
		reg := NewRegistry()
		reg.MustRegister(Builtin{
			Name: "double",
			Fn: func(env *Env, args []mir.Value) (mir.Value, error) {
				return args[0].(mir.Int) * 2, nil
			},
			Cost: func(args []mir.Value) int64 { return 100 },
		})
		return reg
	}},
	{name: "unary ops", src: `
func f(a, b) {
  n = neg a
  fv = i2f n
  nf = neg fv
  i = f2i nf
  t = eq i a
  nt = not t
  return nt
}
`, args: []mir.Value{mir.Int(12), mir.Float(1.5)}},
	{name: "bool logic", src: `
func f(a, b) {
  c = and a b
  d = or a b
  e = eq c d
  return e
}
`, args: []mir.Value{mir.Bool(true), mir.Bool(false)}},
	{name: "eq across kinds", src: `
func f(a, b) {
  e = eq a b
  n = ne a b
  r = or e n
  return r
}
`, args: []mir.Value{mir.Int(1), mir.Float(1)}},
	{name: "branch on int condition", src: `
func f(x) {
  if x goto yes
  zero = const 0
  return zero
yes:
  one = const 1
  return one
}
`, args: []mir.Value{mir.Int(7)}},
	{name: "null return", src: `
func f(x) {
  return
}
`, args: []mir.Value{mir.Int(1)}},

	// Error paths: the engines promise byte-identical error text.
	{name: "err int division by zero", src: `
func f(a, b) {
  q = div a b
  return q
}
`, args: []mir.Value{mir.Int(1), mir.Int(0)}},
	{name: "err float division by zero", src: `
func f(a, b) {
  q = div a b
  return q
}
`, args: []mir.Value{mir.Float(1), mir.Float(0)}},
	{name: "err mod by zero", src: `
func f(a, b) {
  q = mod a b
  return q
}
`, args: []mir.Value{mir.Int(1), mir.Int(0)}},
	{name: "err mod on floats", src: `
func f(a, b) {
  q = mod a b
  return q
}
`, args: []mir.Value{mir.Float(1.5), mir.Float(2)}},
	{name: "err unset register", src: `
func f(x) {
  y = move nope
  return y
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err add object", src: `
class C {
  v int
}

func f(x) {
  o = new C
  s = add o x
  return s
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err bad cast", src: `
class C {
  v int
}

func f(x) {
  c = cast x C
  return c
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err unknown builtin", src: `
func f(x) {
  y = call nope x
  return y
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err getfield on int", src: `
func f(x) {
  y = getfield x w
  return y
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err unknown field", src: `
class C {
  v int
}

func f(x) {
  o = new C
  y = getfield o nope
  return y
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err arrget on scalar", src: `
func f(x) {
  i = const 0
  v = arrget x i
  return v
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err index out of range", src: `
func f(x) {
  i = const 9
  v = arrget x i
  return v
}
`, args: []mir.Value{mir.IntArray{1, 2}}},
	{name: "err arrset element kind", src: `
func f(x) {
  i = const 0
  v = const 1.5
  arrset x i v
  return
}
`, args: []mir.Value{mir.IntArray{1}}},
	{name: "err negative array length", src: `
func f(x) {
  n = const -3
  a = newarray int n
  return a
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err newarray non-int length", src: `
func f(x) {
  a = newarray int x
  return a
}
`, args: []mir.Value{mir.Str("n")}},
	{name: "err len of int", src: `
func f(x) {
  n = len x
  return n
}
`, args: []mir.Value{mir.Int(1)}},
	{name: "err branch on string", src: `
func f(x) {
  if x goto l
l:
  return
}
`, args: []mir.Value{mir.Str("s")}},
	{name: "err step limit", src: `
func spin(x) {
loop:
  one = const 1
  x = add x one
  goto loop
}
`, args: []mir.Value{mir.Int(0)}, maxSteps: 1000},
	{name: "err work budget", src: `
func spin(x) {
loop:
  one = const 1
  x = add x one
  goto loop
}
`, args: []mir.Value{mir.Int(0)}, maxWork: 643},
}

// runStepping executes a case on the stepping machine.
func runStepping(t *testing.T, u *asm.Unit, c diffCase, hook EdgeHook) (Outcome, error, *Machine) {
	t.Helper()
	env := diffEnv(t, u, c)
	m, err := NewMachine(env, u.Programs[0], copyArgs(c.args))
	if err != nil {
		t.Fatal(err)
	}
	m.Hook = hook
	out, err := m.Run()
	return out, err, m
}

// runCompiled executes a case on the compiled engine with the given watch
// set (nil = watch everything).
func runCompiled(t *testing.T, u *asm.Unit, c diffCase, watch []Edge, hook EdgeHook) (Outcome, error, *CodeMachine) {
	t.Helper()
	env := diffEnv(t, u, c)
	code := compileOrDie(t, u.Programs[0], watch)
	m, err := code.NewMachine(env, copyArgs(c.args))
	if err != nil {
		t.Fatal(err)
	}
	m.Hook = hook
	out, err := m.Run()
	return out, err, m
}

// compareOutcomes asserts both engines produced identical results: outcome
// flags, return value, work and step accounting, and exact error text.
func compareOutcomes(t *testing.T, label string, sout Outcome, serr error, cout Outcome, cerr error) {
	t.Helper()
	if got, want := errText(cerr), errText(serr); got != want {
		t.Errorf("%s: compiled err %q, stepping err %q", label, got, want)
	}
	if cout.Done != sout.Done {
		t.Errorf("%s: compiled done=%v, stepping done=%v", label, cout.Done, sout.Done)
	}
	if !mir.Equal(cout.Return, sout.Return) {
		t.Errorf("%s: compiled return %v, stepping return %v", label, cout.Return, sout.Return)
	}
	if cout.Split != sout.Split {
		t.Errorf("%s: compiled split %v, stepping split %v", label, cout.Split, sout.Split)
	}
	if cout.Work != sout.Work {
		t.Errorf("%s: compiled work %d, stepping work %d", label, cout.Work, sout.Work)
	}
	if cout.Steps != sout.Steps {
		t.Errorf("%s: compiled steps %d, stepping steps %d", label, cout.Steps, sout.Steps)
	}
}

// TestEngineDifferential runs the corpus through both engines twice — once
// with every edge watched (no fusion, full hook parity) and once with no
// edges watched (maximal fusion) — and demands identical outcomes, register
// files and error text.
func TestEngineDifferential(t *testing.T) {
	for _, c := range diffCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			u := parseOrDie(t, c.src)
			prog := u.Programs[0]
			sout, serr, sm := runStepping(t, u, c, nil)
			for _, w := range []struct {
				name  string
				watch []Edge
			}{
				{"watch-all", nil},
				{"watch-none", []Edge{}},
			} {
				cout, cerr, cm := runCompiled(t, u, c, w.watch, nil)
				compareOutcomes(t, w.name, sout, serr, cout, cerr)
				for _, r := range prog.Registers() {
					sv, sok := sm.Reg(r)
					cv, cok := cm.Reg(r)
					if sok != cok || !mir.Equal(sv, cv) {
						t.Errorf("%s: register %q: compiled (%v,%v), stepping (%v,%v)", w.name, r, cv, cok, sv, sok)
					}
				}
				cm.Release()
			}
		})
	}
}

// TestEngineEdgeTraceParity: with every edge watched, the compiled engine
// must deliver exactly the stepping engine's edge sequence to the hook.
func TestEngineEdgeTraceParity(t *testing.T) {
	c := diffCases[3] // loop over int array
	u := parseOrDie(t, c.src)
	var strace []Edge
	_, _, _ = runStepping(t, u, c, func(e Edge) bool {
		strace = append(strace, e)
		return false
	})
	var ctrace []Edge
	_, _, cm := runCompiled(t, u, c, nil, func(e Edge) bool {
		ctrace = append(ctrace, e)
		return false
	})
	defer cm.Release()
	if len(strace) == 0 {
		t.Fatal("stepping run observed no edges")
	}
	if len(ctrace) != len(strace) {
		t.Fatalf("compiled observed %d edges, stepping %d", len(ctrace), len(strace))
	}
	for i := range strace {
		if ctrace[i] != strace[i] {
			t.Fatalf("edge %d: compiled %v, stepping %v", i, ctrace[i], strace[i])
		}
	}
}

// TestEngineSplitParity splits both engines at every node and checks the
// stopped outcome, the snapshot, and the completion of a cross-restored
// continuation (compiled snapshot resumed on the stepping engine and vice
// versa) all agree with the unsplit run.
func TestEngineSplitParity(t *testing.T) {
	c := diffCases[3] // loop over int array
	u := parseOrDie(t, c.src)
	prog := u.Programs[0]
	wout, werr, _ := runStepping(t, u, c, nil)
	if werr != nil {
		t.Fatal(werr)
	}

	for splitAt := 1; splitAt < len(prog.Instrs); splitAt++ {
		target := splitAt
		hook := func(e Edge) bool { return e.To == target }
		sout, serr, sm := runStepping(t, u, c, hook)
		cout, cerr, cm := runCompiled(t, u, c, nil, hook)
		label := fmt.Sprintf("split at %d", splitAt)
		compareOutcomes(t, label, sout, serr, cout, cerr)
		if serr != nil || sout.Done {
			cm.Release()
			continue
		}
		ssnap := sm.Snapshot(prog.Registers())
		csnap := cm.Snapshot(prog.Registers())
		if len(ssnap) != len(csnap) {
			t.Errorf("%s: snapshot sizes %d vs %d", label, len(csnap), len(ssnap))
		}
		for k, sv := range ssnap {
			if cv, ok := csnap[k]; !ok || !mir.Equal(sv, cv) {
				t.Errorf("%s: snapshot %q: compiled %v, stepping %v", label, k, cv, sv)
			}
		}
		cm.Release()

		// Cross-restore: each engine finishes the other's continuation.
		code := compileOrDie(t, prog, nil)
		env := diffEnv(t, u, c)
		rm, err := code.Restore(env, sout.Split.To, ssnap)
		if err != nil {
			t.Fatal(err)
		}
		rout, err := rm.Run()
		if err != nil {
			t.Fatalf("%s: compiled resume: %v", label, err)
		}
		if !mir.Equal(rout.Return, wout.Return) {
			t.Errorf("%s: compiled resume return %v, want %v", label, rout.Return, wout.Return)
		}
		if sout.Work+rout.Work != wout.Work {
			t.Errorf("%s: split work %d+%d != %d", label, sout.Work, rout.Work, wout.Work)
		}
		rm.Release()

		sm2, err := Restore(diffEnv(t, u, c), prog, cout.Split.To, csnap)
		if err != nil {
			t.Fatal(err)
		}
		rout2, err := sm2.Run()
		if err != nil {
			t.Fatalf("%s: stepping resume: %v", label, err)
		}
		if !mir.Equal(rout2.Return, wout.Return) {
			t.Errorf("%s: stepping resume return %v, want %v", label, rout2.Return, wout.Return)
		}
	}
}

// TestRestoreIntoFusedChain resumes a maximally-fused program at every
// instruction index, including the middles of superinstruction chains, and
// checks the suffix execution is exact (the compiler keeps a chain-suffix op
// at every index precisely for this).
func TestRestoreIntoFusedChain(t *testing.T) {
	c := diffCases[0] // straight-line int arithmetic: one long fused chain
	u := parseOrDie(t, c.src)
	prog := u.Programs[0]
	code := compileOrDie(t, prog, []Edge{})
	if code.Superinstructions() == 0 {
		t.Fatal("straight-line program compiled with no superinstructions")
	}
	wout, werr, _ := runStepping(t, u, c, nil)
	if werr != nil {
		t.Fatal(werr)
	}
	for splitAt := 1; splitAt < len(prog.Instrs); splitAt++ {
		target := splitAt
		sout, serr, sm := runStepping(t, u, c, func(e Edge) bool { return e.To == target })
		if serr != nil || sout.Done {
			continue
		}
		snap := sm.Snapshot(prog.Registers())
		rm, err := code.Restore(diffEnv(t, u, c), sout.Split.To, snap)
		if err != nil {
			t.Fatal(err)
		}
		rout, err := rm.Run()
		if err != nil {
			t.Fatalf("resume at %d: %v", splitAt, err)
		}
		if !mir.Equal(rout.Return, wout.Return) {
			t.Errorf("resume at %d: return %v, want %v", splitAt, rout.Return, wout.Return)
		}
		if sout.Work+rout.Work != wout.Work {
			t.Errorf("resume at %d: work %d+%d != %d", splitAt, sout.Work, rout.Work, wout.Work)
		}
		if sout.Steps+rout.Steps != wout.Steps {
			t.Errorf("resume at %d: steps %d+%d != %d", splitAt, sout.Steps, rout.Steps, wout.Steps)
		}
		rm.Release()
	}
}

// TestWatchSetGatesHooks: only watched edges reach the hook, and a partial
// watch set still produces correct results while fusing the rest.
func TestWatchSetGatesHooks(t *testing.T) {
	c := diffCases[3] // loop over int array
	u := parseOrDie(t, c.src)
	prog := u.Programs[0]

	// The back edge of the loop (goto loop) is the only watched edge.
	var backFrom int
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == mir.OpGoto {
			backFrom = i
		}
	}
	watch := []Edge{{From: backFrom, To: 3}}
	var seen []Edge
	cout, cerr, cm := runCompiled(t, u, c, watch, func(e Edge) bool {
		seen = append(seen, e)
		return false
	})
	defer cm.Release()
	if cerr != nil {
		t.Fatal(cerr)
	}
	sout, serr, _ := runStepping(t, u, c, nil)
	if serr != nil {
		t.Fatal(serr)
	}
	compareOutcomes(t, "partial watch", sout, serr, cout, cerr)
	if len(seen) == 0 {
		t.Fatal("watched edge never reported")
	}
	for _, e := range seen {
		if e != (Edge{From: backFrom, To: 3}) {
			t.Fatalf("hook saw unwatched edge %v", e)
		}
	}

	// With nothing watched the hook must stay silent.
	seen = nil
	_, cerr, cm2 := runCompiled(t, u, c, []Edge{}, func(e Edge) bool {
		seen = append(seen, e)
		return false
	})
	defer cm2.Release()
	if cerr != nil {
		t.Fatal(cerr)
	}
	if len(seen) != 0 {
		t.Fatalf("empty watch set delivered %d edges", len(seen))
	}
}

// TestCompileRejectsStructuralDefects: lowering fails up front on the
// defects that used to miscompile at runtime.
func TestCompileRejectsStructuralDefects(t *testing.T) {
	cases := []struct {
		name   string
		prog   *mir.Program
		errSub string
	}{
		{"empty program", &mir.Program{Name: "empty"}, "no instructions"},
		{"falls off the end", &mir.Program{Name: "open", Instrs: []mir.Instr{
			{Op: mir.OpConst, Dst: "x", Lit: mir.Int(1)},
		}}, "falls off the end"},
		{"undefined label", &mir.Program{Name: "dangling", Instrs: []mir.Instr{
			{Op: mir.OpGoto, Target: "nowhere"},
			{Op: mir.OpReturn},
		}}, `undefined label "nowhere"`},
		{"undefined branch label", &mir.Program{Name: "dangling2", Params: []string{"x"}, Instrs: []mir.Instr{
			{Op: mir.OpIf, Src: "x", Target: "gone"},
			{Op: mir.OpReturn},
		}}, `undefined label "gone"`},
		{"duplicate label", &mir.Program{Name: "dup", Instrs: []mir.Instr{
			{Op: mir.OpConst, Dst: "x", Lit: mir.Int(1), Label: "l"},
			{Op: mir.OpConst, Dst: "y", Lit: mir.Int(2), Label: "l"},
			{Op: mir.OpReturn},
		}}, `duplicate label "l"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.prog, CompileOptions{})
			if err == nil || !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("err = %v, want %q", err, c.errSub)
			}
		})
	}
}

// TestSteppingUndefinedLabelIsRuntimeError is the regression test for the
// silent-miscompilation bug: a dangling branch on an unvalidated program
// used to jump to instruction 0; it must be a runtime error.
func TestSteppingUndefinedLabelIsRuntimeError(t *testing.T) {
	for _, op := range []mir.Op{mir.OpGoto, mir.OpIf} {
		prog := &mir.Program{Name: "dangling", Params: []string{"x"}, Instrs: []mir.Instr{
			{Op: op, Src: "x", Target: "nowhere"},
			{Op: mir.OpReturn},
		}}
		env := NewEnv(nil, NewRegistry())
		m, err := NewMachine(env, prog, []mir.Value{mir.Int(1)})
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.Run()
		if err == nil || !strings.Contains(err.Error(), `undefined label "nowhere"`) {
			t.Fatalf("op %v: err = %v, want undefined-label runtime error", op, err)
		}
	}
}

// TestSuccessorsUndefinedLabelErrors is the regression test for the analysis
// half of the same bug: Successors must error on a dangling branch, not
// fabricate an edge to instruction 0.
func TestSuccessorsUndefinedLabelErrors(t *testing.T) {
	prog := &mir.Program{Name: "dangling", Instrs: []mir.Instr{
		{Op: mir.OpGoto, Target: "nowhere"},
		{Op: mir.OpReturn},
	}}
	if _, err := prog.Successors(0); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("Successors err = %v, want undefined-label error", err)
	}
}

// TestF2ISaturates is the regression test for the float→int conversion: it
// must saturate Java-style instead of going through Go's undefined
// out-of-range conversion.
func TestF2ISaturates(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		{1e30, math.MaxInt64},
		{-1e30, math.MinInt64},
		{9.25e18, math.MaxInt64},
		{-9.25e18, math.MinInt64},
		{1.9, 1},
		{-1.9, -1},
		{0, 0},
	}
	u := parseOrDie(t, `
func f(x) {
  y = f2i x
  return y
}
`)
	for _, c := range cases {
		if got := f2i(c.in); got != c.want {
			t.Errorf("f2i(%v) = %d, want %d", c.in, got, c.want)
		}
		// Both engines must agree with the saturating helper.
		dc := diffCase{args: []mir.Value{mir.Float(c.in)}}
		sout, serr, _ := runStepping(t, u, dc, nil)
		cout, cerr, cm := runCompiled(t, u, dc, nil, nil)
		if serr != nil || cerr != nil {
			t.Fatalf("f2i(%v): errors %v / %v", c.in, serr, cerr)
		}
		if sout.Return != mir.Int(c.want) || cout.Return != mir.Int(c.want) {
			t.Errorf("f2i(%v): stepping %v, compiled %v, want %d", c.in, sout.Return, cout.Return, c.want)
		}
		cm.Release()
	}
}

// TestCompiledRunAllocs guards the pooled steady state: a full
// acquire/run/release cycle on the compiled engine must not allocate.
func TestCompiledRunAllocs(t *testing.T) {
	u := parseOrDie(t, `
func sum(arr) {
  n = len arr
  i = const 0
  acc = const 0
loop:
  done = ge i n
  if done goto finish
  v = arrget arr i
  m = mod v n
  acc = add acc m
  one = const 1
  i = add i one
  goto loop
finish:
  ok = lt acc n
  return ok
}
`)
	prog := u.Programs[0]
	code := compileOrDie(t, prog, []Edge{})
	env := NewEnv(nil, NewRegistry())
	arr := make(mir.IntArray, 64)
	for i := range arr {
		arr[i] = int64(i * 3)
	}
	args := []mir.Value{arr}

	cycle := func() {
		m, err := code.NewMachine(env, args)
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Done {
			t.Fatal("run did not complete")
		}
		m.Release()
	}
	cycle() // warm the pool
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("compiled run allocates %.1f times per message, want 0", avg)
	}
}

// BenchmarkEngineLoop compares the raw engines on a tight integer loop with
// no hooks — the upper bound of the compiled engine's advantage.
func BenchmarkEngineLoop(b *testing.B) {
	u, err := asm.Parse(`
func sum(arr) {
  n = len arr
  i = const 0
  acc = const 0
loop:
  done = ge i n
  if done goto finish
  v = arrget arr i
  acc = add acc v
  one = const 1
  i = add i one
  goto loop
finish:
  return acc
}
`)
	if err != nil {
		b.Fatal(err)
	}
	prog := u.Programs[0]
	env := NewEnv(nil, NewRegistry())
	arr := make(mir.IntArray, 1024)
	for i := range arr {
		arr[i] = int64(i)
	}
	args := []mir.Value{arr}

	b.Run("stepping", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := NewMachine(env, prog, args)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		code, err := Compile(prog, CompileOptions{Watch: []Edge{}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := code.NewMachine(env, args)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			m.Release()
		}
	})
}
