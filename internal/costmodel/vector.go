package costmodel

import "methodpart/internal/analysis"

// Vector is the multi-objective cost of splitting at one PSE (or, summed,
// of one whole cut): the axes the Pareto-front selection in
// internal/reconfig trades off against each other. All axes are "smaller is
// better" expectations per published message, weighted by the probability
// that a message's path crosses the PSE.
type Vector struct {
	// Bytes is the expected continuation bytes on the wire.
	Bytes float64
	// LatencyMS is the expected end-to-end latency contribution in
	// milliseconds: sender-side work, link set-up time, transmission time
	// and receiver-side work under the Environment's speeds.
	LatencyMS float64
	// SenderWork is the expected modulator-side work (work units).
	SenderWork float64
	// ReceiverWork is the expected demodulator-side work (work units).
	ReceiverWork float64
	// FailureRate is the expected modulation/demodulation faults per
	// message, derived from the breaker/NACK statistics.
	FailureRate float64
}

// Add returns the axis-wise sum of two vectors. Cut vectors are the sum of
// their PSE vectors: each message crosses exactly one cut edge, so the
// probability-weighted per-PSE expectations add.
func (v Vector) Add(w Vector) Vector {
	return Vector{
		Bytes:        v.Bytes + w.Bytes,
		LatencyMS:    v.LatencyMS + w.LatencyMS,
		SenderWork:   v.SenderWork + w.SenderWork,
		ReceiverWork: v.ReceiverWork + w.ReceiverWork,
		FailureRate:  v.FailureRate + w.FailureRate,
	}
}

// Dominates reports Pareto dominance: v is no worse than w on every axis
// and strictly better on at least one.
func (v Vector) Dominates(w Vector) bool {
	better := false
	cmp := func(a, b float64) bool {
		if a > b {
			return false
		}
		if a < b {
			better = true
		}
		return true
	}
	if !cmp(v.Bytes, w.Bytes) ||
		!cmp(v.LatencyMS, w.LatencyMS) ||
		!cmp(v.SenderWork, w.SenderWork) ||
		!cmp(v.ReceiverWork, w.ReceiverWork) ||
		!cmp(v.FailureRate, w.FailureRate) {
		return false
	}
	return better
}

// PSEVector converts one PSE's profiled statistics into its cost vector
// under the given environment. The latency term follows eq. 1 of §4.2:
// modulator work at sender speed, per-message link set-up (α), transmission
// at link bandwidth, demodulator work at receiver speed — all weighted by
// the crossing probability, so summing over a cut yields the expected
// per-message values.
func PSEVector(st Stat, env Environment) Vector {
	env = env.Sanitize()
	lat := safeDiv(st.ModWork, env.SenderSpeed) +
		env.LatencyMS +
		safeDiv(st.Bytes, env.Bandwidth) +
		safeDiv(st.DemodWork, env.ReceiverSpeed)
	var failures float64
	if st.Count > 0 {
		failures = float64(st.Failures) / float64(st.Count)
	}
	return Vector{
		Bytes:        st.Prob * st.Bytes,
		LatencyMS:    st.Prob * lat,
		SenderWork:   st.Prob * st.ModWork,
		ReceiverWork: st.Prob * st.DemodWork,
		FailureRate:  st.Prob * failures,
	}
}

// StaticVector estimates a PSE's cost vector before any profile exists,
// from its static cost descriptor: the deterministic byte lower bound plus
// a nominal per-variable estimate (mirroring DataSize.StaticCapacity), a
// crossing probability of 1, and no work/failure information. It keeps
// initial fronts ordered by the only thing statically known — continuation
// size — without inventing work figures the analysis cannot see.
func StaticVector(c analysis.CostDesc, env Environment) Vector {
	env = env.Sanitize()
	bytes := float64(c.Det) + float64(len(c.Vars))*staticVarEstimate
	return Vector{
		Bytes:     bytes,
		LatencyMS: env.LatencyMS + safeDiv(bytes, env.Bandwidth),
	}
}

// staticVarEstimate is the nominal byte contribution of one
// runtime-determined variable in static vector estimates, matching the
// static capacity estimate of the data-size model.
const staticVarEstimate = 256
