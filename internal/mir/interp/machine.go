package interp

import (
	"errors"
	"fmt"

	"methodpart/internal/mir"
)

// Edge is a directed control-flow edge of the Unit Graph, identified by the
// instruction indices of its endpoints.
type Edge struct {
	// From is the index of the instruction just executed.
	From int
	// To is the index execution would transfer to.
	To int
}

// String renders the edge as in the paper, e.g. "Edge(4,10)".
func (e Edge) String() string { return fmt.Sprintf("Edge(%d,%d)", e.From, e.To) }

// EdgeHook observes every control-flow edge the machine is about to
// traverse. Returning true stops execution before the transfer: the machine
// has fully executed From, and a resumed run must start at To.
type EdgeHook func(e Edge) bool

// ErrStepLimit is returned when a run exceeds the environment step bound.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// ErrWorkBudget is returned when a run exceeds the environment work budget
// (Env.MaxWork): the segment is cancelled instead of wedging its caller.
var ErrWorkBudget = errors.New("interp: work budget exceeded")

// Outcome is the result of running a machine segment.
type Outcome struct {
	// Done reports whether the program ran to a return instruction.
	Done bool
	// Return is the returned value (Null if the return carried none);
	// only meaningful when Done.
	Return mir.Value
	// Split is the edge at which execution stopped; only meaningful when
	// !Done. Resumption must start at Split.To.
	Split Edge
	// Work is the total work units consumed by this segment.
	Work int64
	// Steps is the number of instructions executed in this segment.
	Steps int64
}

// Machine executes one program invocation. It is single-use per message but
// supports being snapshotted at a split edge and a fresh machine being
// restored on the other side.
type Machine struct {
	env  *Env
	prog *mir.Program
	regs map[string]mir.Value
	pc   int

	work  int64
	steps int64
	// Hook, if set, observes edges and can request a split.
	Hook EdgeHook
}

// NewMachine prepares a machine for the given program with arguments bound
// to the program parameters.
func NewMachine(env *Env, prog *mir.Program, args []mir.Value) (*Machine, error) {
	if len(args) != len(prog.Params) {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d", prog.Name, len(prog.Params), len(args))
	}
	m := &Machine{
		env:  env,
		prog: prog,
		regs: make(map[string]mir.Value, len(prog.Params)+8),
	}
	for i, prm := range prog.Params {
		m.regs[prm] = args[i]
	}
	return m, nil
}

// Restore prepares a machine that resumes at instruction index node with the
// given register values — the demodulator side of a remote continuation.
func Restore(env *Env, prog *mir.Program, node int, regs map[string]mir.Value) (*Machine, error) {
	if node < 0 || node >= len(prog.Instrs) {
		return nil, fmt.Errorf("interp: resume node %d out of range for %s", node, prog.Name)
	}
	m := &Machine{
		env:  env,
		prog: prog,
		regs: make(map[string]mir.Value, len(regs)),
		pc:   node,
	}
	for k, v := range regs {
		m.regs[k] = v
	}
	return m, nil
}

// Reg returns the current value of a register.
func (m *Machine) Reg(name string) (mir.Value, bool) {
	v, ok := m.regs[name]
	return v, ok
}

// Snapshot copies the current values of the named registers — the live
// variables handed over at a split edge. Unset registers are omitted.
func (m *Machine) Snapshot(names []string) map[string]mir.Value {
	out := make(map[string]mir.Value, len(names))
	for _, n := range names {
		if v, ok := m.regs[n]; ok {
			out[n] = v
		}
	}
	return out
}

// SetHook installs (or clears) the edge hook — the method form of writing
// the Hook field, shared with CodeMachine so callers can drive either
// engine through one interface.
func (m *Machine) SetHook(h EdgeHook) { m.Hook = h }

// Release is a no-op: stepping machines are not pooled. It exists so the
// stepping and compiled machines satisfy the same acquire/run/release
// contract.
func (m *Machine) Release() {}

// PC returns the index of the next instruction to execute.
func (m *Machine) PC() int { return m.pc }

// Work returns the work units consumed so far.
func (m *Machine) Work() int64 { return m.work }

// Run executes until the program returns, the hook requests a split, or the
// step bound is hit.
func (m *Machine) Run() (Outcome, error) {
	limit := m.env.maxSteps()
	budget := m.env.MaxWork
	for {
		if m.steps >= limit {
			return Outcome{Work: m.work, Steps: m.steps}, fmt.Errorf("%w (%d steps in %s)", ErrStepLimit, m.steps, m.prog.Name)
		}
		if budget > 0 && m.work >= budget {
			return Outcome{Work: m.work, Steps: m.steps}, fmt.Errorf("%w (%d work units in %s)", ErrWorkBudget, m.work, m.prog.Name)
		}
		in := &m.prog.Instrs[m.pc]
		next, ret, err := m.exec(in)
		m.steps++
		if err != nil {
			return Outcome{Work: m.work, Steps: m.steps}, fmt.Errorf("interp: %s instr %d (%s): %w", m.prog.Name, m.pc, in, err)
		}
		if next < 0 { // returned
			return Outcome{Done: true, Return: ret, Work: m.work, Steps: m.steps}, nil
		}
		edge := Edge{From: m.pc, To: next}
		if m.Hook != nil && m.Hook(edge) {
			m.pc = next
			return Outcome{Split: edge, Work: m.work, Steps: m.steps}, nil
		}
		m.pc = next
	}
}

// exec executes one instruction, returning the next pc (or -1 on return) and
// the return value when returning.
func (m *Machine) exec(in *mir.Instr) (int, mir.Value, error) {
	m.work++ // base cost of every instruction
	fall := m.pc + 1
	switch in.Op {
	case mir.OpConst:
		m.regs[in.Dst] = in.Lit
	case mir.OpMove:
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		m.regs[in.Dst] = v
	case mir.OpBin:
		a, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		b, err := m.get(in.Src2)
		if err != nil {
			return 0, nil, err
		}
		v, err := evalBin(in.Bin, a, b)
		if err != nil {
			return 0, nil, err
		}
		m.regs[in.Dst] = v
	case mir.OpUn:
		a, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		v, err := evalUn(in.Un, a)
		if err != nil {
			return 0, nil, err
		}
		m.regs[in.Dst] = v
	case mir.OpGoto:
		t, ok := m.prog.LabelIndex(in.Target)
		if !ok {
			return 0, nil, fmt.Errorf("undefined label %q", in.Target)
		}
		return t, nil, nil
	case mir.OpIf, mir.OpIfNot:
		c, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		truth, err := mir.Truthy(c)
		if err != nil {
			return 0, nil, err
		}
		if in.Op == mir.OpIfNot {
			truth = !truth
		}
		if truth {
			t, ok := m.prog.LabelIndex(in.Target)
			if !ok {
				return 0, nil, fmt.Errorf("undefined label %q", in.Target)
			}
			return t, nil, nil
		}
	case mir.OpCall:
		b, ok := m.env.Builtins.Lookup(in.Fn)
		if !ok {
			return 0, nil, fmt.Errorf("unknown builtin %q", in.Fn)
		}
		args := make([]mir.Value, len(in.Args))
		for i, r := range in.Args {
			v, err := m.get(r)
			if err != nil {
				return 0, nil, err
			}
			args[i] = v
		}
		if b.Cost != nil {
			m.work += b.Cost(args)
		}
		v, err := b.Fn(m.env, args)
		if err != nil {
			return 0, nil, fmt.Errorf("builtin %s: %w", in.Fn, err)
		}
		if in.Dst != "" {
			if v == nil {
				v = mir.Null{}
			}
			m.regs[in.Dst] = v
		}
	case mir.OpReturn:
		if in.Src == "" {
			return -1, mir.Null{}, nil
		}
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		return -1, v, nil
	case mir.OpNew:
		obj, err := m.env.Classes.New(in.Class)
		if err != nil {
			return 0, nil, err
		}
		m.regs[in.Dst] = obj
	case mir.OpGetField:
		obj, err := m.getObject(in.Src)
		if err != nil {
			return 0, nil, err
		}
		v, ok := obj.Fields[in.Field]
		if !ok {
			return 0, nil, fmt.Errorf("object %s has no field %q", obj.Class, in.Field)
		}
		m.regs[in.Dst] = v
	case mir.OpSetField:
		obj, err := m.getObject(in.Dst)
		if err != nil {
			return 0, nil, err
		}
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		obj.Fields[in.Field] = v
	case mir.OpNewArray:
		n, err := m.getInt(in.Src)
		if err != nil {
			return 0, nil, err
		}
		if n < 0 {
			return 0, nil, fmt.Errorf("negative array length %d", n)
		}
		switch in.ElemKind {
		case mir.KindInt:
			m.regs[in.Dst] = make(mir.IntArray, n)
		case mir.KindFloat:
			m.regs[in.Dst] = make(mir.FloatArray, n)
		case mir.KindBytes:
			m.regs[in.Dst] = make(mir.Bytes, n)
		default:
			return 0, nil, fmt.Errorf("bad newarray element kind %s", in.ElemKind)
		}
	case mir.OpArrGet:
		arr, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		idx, err := m.getInt(in.Src2)
		if err != nil {
			return 0, nil, err
		}
		v, err := arrGet(arr, idx)
		if err != nil {
			return 0, nil, err
		}
		m.regs[in.Dst] = v
	case mir.OpArrSet:
		arr, err := m.get(in.Dst)
		if err != nil {
			return 0, nil, err
		}
		idx, err := m.getInt(in.Src2)
		if err != nil {
			return 0, nil, err
		}
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		if err := arrSet(arr, idx, v); err != nil {
			return 0, nil, err
		}
	case mir.OpInstanceOf:
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		obj, ok := v.(*mir.Object)
		m.regs[in.Dst] = mir.Bool(ok && obj != nil && obj.Class == in.Class)
	case mir.OpCast:
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		obj, ok := v.(*mir.Object)
		if !ok || obj == nil || obj.Class != in.Class {
			return 0, nil, fmt.Errorf("cannot cast %s to %s", v.Kind(), in.Class)
		}
		m.regs[in.Dst] = v
	case mir.OpLen:
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		n, err := valueLen(v)
		if err != nil {
			return 0, nil, err
		}
		m.regs[in.Dst] = mir.Int(n)
	case mir.OpGetGlobal:
		v, ok := m.env.Globals[in.Field]
		if !ok {
			v = mir.Null{}
		}
		m.regs[in.Dst] = v
	case mir.OpSetGlobal:
		v, err := m.get(in.Src)
		if err != nil {
			return 0, nil, err
		}
		m.env.Globals[in.Field] = v
	default:
		return 0, nil, fmt.Errorf("unknown opcode %d", uint8(in.Op))
	}
	return fall, nil, nil
}

func (m *Machine) get(reg string) (mir.Value, error) {
	v, ok := m.regs[reg]
	if !ok {
		return nil, fmt.Errorf("read of unset register %q", reg)
	}
	return v, nil
}

func (m *Machine) getInt(reg string) (int64, error) {
	v, err := m.get(reg)
	if err != nil {
		return 0, err
	}
	i, ok := v.(mir.Int)
	if !ok {
		return 0, fmt.Errorf("register %q: want int, got %s", reg, v.Kind())
	}
	return int64(i), nil
}

func (m *Machine) getObject(reg string) (*mir.Object, error) {
	v, err := m.get(reg)
	if err != nil {
		return nil, err
	}
	obj, ok := v.(*mir.Object)
	if !ok || obj == nil {
		return nil, fmt.Errorf("register %q: want object, got %s", reg, v.Kind())
	}
	return obj, nil
}

func arrGet(arr mir.Value, idx int64) (mir.Value, error) {
	switch a := arr.(type) {
	case mir.IntArray:
		if idx < 0 || idx >= int64(len(a)) {
			return nil, fmt.Errorf("index %d out of range [0,%d)", idx, len(a))
		}
		return mir.Int(a[idx]), nil
	case mir.FloatArray:
		if idx < 0 || idx >= int64(len(a)) {
			return nil, fmt.Errorf("index %d out of range [0,%d)", idx, len(a))
		}
		return mir.Float(a[idx]), nil
	case mir.Bytes:
		if idx < 0 || idx >= int64(len(a)) {
			return nil, fmt.Errorf("index %d out of range [0,%d)", idx, len(a))
		}
		return mir.Int(a[idx]), nil
	default:
		return nil, fmt.Errorf("arrget on %s", arr.Kind())
	}
}

func arrSet(arr mir.Value, idx int64, v mir.Value) error {
	switch a := arr.(type) {
	case mir.IntArray:
		iv, ok := v.(mir.Int)
		if !ok {
			return fmt.Errorf("intarray element must be int, got %s", v.Kind())
		}
		if idx < 0 || idx >= int64(len(a)) {
			return fmt.Errorf("index %d out of range [0,%d)", idx, len(a))
		}
		a[idx] = int64(iv)
	case mir.FloatArray:
		fv, ok := v.(mir.Float)
		if !ok {
			return fmt.Errorf("floatarray element must be float, got %s", v.Kind())
		}
		if idx < 0 || idx >= int64(len(a)) {
			return fmt.Errorf("index %d out of range [0,%d)", idx, len(a))
		}
		a[idx] = float64(fv)
	case mir.Bytes:
		iv, ok := v.(mir.Int)
		if !ok {
			return fmt.Errorf("bytes element must be int, got %s", v.Kind())
		}
		if idx < 0 || idx >= int64(len(a)) {
			return fmt.Errorf("index %d out of range [0,%d)", idx, len(a))
		}
		a[idx] = byte(iv)
	default:
		return fmt.Errorf("arrset on %s", arr.Kind())
	}
	return nil
}

func valueLen(v mir.Value) (int, error) {
	switch a := v.(type) {
	case mir.IntArray:
		return len(a), nil
	case mir.FloatArray:
		return len(a), nil
	case mir.Bytes:
		return len(a), nil
	case mir.Str:
		return len(a), nil
	default:
		return 0, fmt.Errorf("len of %s", v.Kind())
	}
}
