package obsv

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// Tracer is a bounded, concurrency-safe ring of trace Events with an
// optional live subscription stream. It is built for hot paths:
//
//   - Disabled (or nil) tracers cost one atomic load per call site and
//     never allocate; every method is nil-safe, so endpoints hold a plain
//     *Tracer and emit unconditionally.
//   - Enabled emission stamps the event and copies it into a
//     preallocated ring slot under a short mutex — no allocation per
//     event. When the ring is full the oldest event is overwritten and
//     counted in Dropped.
//   - Subscribers receive events on buffered channels; a slow subscriber
//     loses events (counted per subscription) rather than stalling the
//     runtime.
//
// The zero value is a disabled tracer with no storage; use NewTracer.
type Tracer struct {
	enabled atomic.Bool
	start   time.Time

	mu      sync.Mutex
	ring    []Event
	next    int  // ring index of the next write
	filled  bool // the ring has wrapped at least once
	seq     uint64
	dropped uint64
	subs    []*traceSub
}

// traceSub is one live subscription: a buffered channel plus a count of
// events lost to a full buffer.
type traceSub struct {
	ch   chan Event
	lost atomic.Uint64
}

// NewTracer creates an enabled tracer retaining the last capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{start: now(), ring: make([]Event, capacity)}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether Emit currently records events. Nil-safe; call
// sites that must format Detail strings should guard on it so a disabled
// tracer costs no allocation.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled pauses or resumes recording without discarding the ring.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Emit records one event: it stamps Seq and At, overwrites the oldest
// ring slot if full, and offers the event to every subscriber without
// blocking. No-op (and allocation-free) when the tracer is nil or
// disabled.
func (t *Tracer) Emit(e Event) {
	if t == nil || !t.enabled.Load() {
		return
	}
	at := now().Sub(t.start).Nanoseconds()
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	e.At = at
	if t.filled {
		t.dropped++
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	// Offer to subscribers inside the critical section: the sends are
	// non-blocking (a full buffer counts a loss instead), and holding mu
	// means a concurrent cancel cannot close a channel mid-send.
	for _, s := range t.subs {
		select {
		case s.ch <- e:
		default:
			s.lost.Add(1)
		}
	}
	t.mu.Unlock()
}

// Emitted returns the total number of events recorded (including ones
// the ring has since overwritten).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events were overwritten before being
// snapshotted — the ring-overflow count.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the retained events, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Subscribe registers a live event stream with the given channel buffer
// (minimum 1). Events emitted while the buffer is full are dropped from
// the stream (detectable as gaps in Event.Seq), never blocking the
// emitter. The returned cancel function closes the channel and must be
// called exactly once. Subscribing to a nil tracer returns a closed
// channel and a no-op cancel.
func (t *Tracer) Subscribe(buffer int) (<-chan Event, func()) {
	if t == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 1
	}
	sub := &traceSub{ch: make(chan Event, buffer)}
	t.mu.Lock()
	t.subs = append(t.subs, sub)
	t.mu.Unlock()
	cancel := func() {
		t.mu.Lock()
		subs := make([]*traceSub, 0, len(t.subs))
		for _, s := range t.subs {
			if s != sub {
				subs = append(subs, s)
			}
		}
		t.subs = subs
		// Close under mu: Emit offers to subscribers while holding mu, so
		// no send can race this close.
		close(sub.ch)
		t.mu.Unlock()
	}
	return sub.ch, cancel
}

// WriteJSON dumps the retained events as JSON lines, oldest first.
func (t *Tracer) WriteJSON(w io.Writer) error {
	for _, e := range t.Snapshot() {
		if err := e.WriteJSON(w); err != nil {
			return err
		}
	}
	return nil
}
