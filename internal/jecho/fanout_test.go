package jecho

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// liteSub is a raw-conn subscriber for fan-out tests: it performs the
// Subscribe handshake and drains inbound frames into a recorded event list,
// without a demodulator, reconfiguration unit or heartbeats. Publishers in
// these tests disable silence detection (HeartbeatInterval < 0) so a
// liteSub's silence never retires it.
type liteSub struct {
	conn transport.Conn
	mu   sync.Mutex
	raw  int
	cont []int32 // split PSE of each received continuation, in order
}

func dialLite(t *testing.T, mem *transport.Mem, addr, name string) *liteSub {
	t.Helper()
	ls, err := dialLiteErr(mem, addr, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.close)
	return ls
}

func dialLiteErr(mem *transport.Mem, addr, name string) (*liteSub, error) {
	conn, err := mem.Dial(addr)
	if err != nil {
		return nil, err
	}
	data, err := wire.Marshal(&wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: name,
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := conn.WriteFrame(data); err != nil {
		_ = conn.Close()
		return nil, err
	}
	ls := &liteSub{conn: conn}
	go ls.drain()
	return ls, nil
}

func (l *liteSub) drain() {
	for {
		frame, err := l.conn.ReadFrame()
		if err != nil {
			return
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			continue
		}
		switch m := msg.(type) {
		case *wire.Raw:
			l.mu.Lock()
			l.raw++
			l.mu.Unlock()
		case *wire.Continuation:
			l.mu.Lock()
			l.cont = append(l.cont, m.PSEID)
			l.mu.Unlock()
		}
	}
}

func (l *liteSub) close() { _ = l.conn.Close() }

// events returns (raw count, continuation split PSEs).
func (l *liteSub) events() (int, []int32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.raw, append([]int32(nil), l.cont...)
}

func (l *liteSub) total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.raw + len(l.cont)
}

func (l *liteSub) send(t *testing.T, msg any) {
	t.Helper()
	data, err := wire.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.conn.WriteFrame(data); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// countingBuiltins clones the imaging registry, wrapping resizeTo so the
// counter tracks actual interpreter executions of the handler's movable
// prefix: with a post-resize split plan, one modulation = one resize.
func countingBuiltins() (*interp.Registry, *atomic.Uint64) {
	base, _ := imaging.Builtins()
	reg := interp.NewRegistry()
	var runs atomic.Uint64
	for _, name := range base.Names() {
		b, _ := base.Lookup(name)
		nb := *b
		if name == "resizeTo" {
			inner := b.Fn
			nb.Fn = func(env *interp.Env, args []mir.Value) (mir.Value, error) {
				runs.Add(1)
				return inner(env, args)
			}
		}
		reg.MustRegister(nb)
	}
	return reg, &runs
}

// TestFanoutSharedModulation is the acceptance check for plan-equivalence
// class sharing: N subscribers with identical (channel, program, plan,
// protocol, batching) must cost exactly one modulator run — counted both by
// the publisher's run counter and by an interpreter-level counter inside
// the handler — and one marshal per event, with the remaining N-1 runs
// showing up in methodpart_modulations_saved_total.
func TestFanoutSharedModulation(t *testing.T) {
	mem := transport.NewMem()
	reg, interpRuns := countingBuiltins()
	pub, err := NewPublisher(PublisherConfig{
		Transport:         mem,
		Builtins:          reg,
		HeartbeatInterval: -1,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 6
	subs := make([]*liteSub, n)
	for i := range subs {
		subs[i] = dialLite(t, mem, pub.Addr(), fmt.Sprintf("fan-%d", i))
	}
	waitFor(t, "registration", func() bool { return pub.Subscribers() == n })
	if got := pub.PlanClasses(); got != 1 {
		t.Fatalf("plan classes = %d before any plan push, want 1 (all on the initial raw plan)", got)
	}

	// Everyone pushes the same post-resize split plan; they must coalesce
	// back into a single class once the migrations settle.
	for _, ls := range subs {
		ls.send(t, &wire.Plan{
			Handler: imaging.HandlerName,
			Version: 1,
			Split:   []int32{1, 3},
			Profile: []int32{0, 1, 2, 3},
		})
	}
	waitFor(t, "plan v1 on every subscription", func() bool {
		infos := pub.Subscriptions()
		if len(infos) != n {
			return false
		}
		for _, info := range infos {
			if info.PlanVersion != 1 {
				return false
			}
		}
		return pub.PlanClasses() == 1
	})

	runs0 := pub.ModulatorRuns()
	saved0 := pub.ModulationsSaved()
	interp0 := interpRuns.Load()

	const events = 20
	for i := 0; i < events; i++ {
		reached, err := pub.Publish(imaging.NewFrame(96, 96, int64(i)))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if reached != n {
			t.Fatalf("publish %d reached %d, want %d", i, reached, n)
		}
	}

	if got := pub.ModulatorRuns() - runs0; got != events {
		t.Errorf("modulator runs = %d for %d events, want exactly one per event", got, events)
	}
	if got := interpRuns.Load() - interp0; got != events {
		t.Errorf("interpreter ran the split prefix %d times for %d events, want exactly one per event", got, events)
	}
	if got, want := pub.ModulationsSaved()-saved0, uint64(events*(n-1)); got != want {
		t.Errorf("modulations saved = %d, want %d (N-1 per event)", got, want)
	}

	// The same totals must be visible through the metrics surface.
	var savedSample, runsSample float64
	pub.Collect(func(s obsv.Sample) {
		switch s.Name {
		case "methodpart_modulations_saved_total":
			savedSample = s.Value
		case "methodpart_modulator_runs_total":
			runsSample = s.Value
		}
	})
	if savedSample != float64(pub.ModulationsSaved()) {
		t.Errorf("methodpart_modulations_saved_total = %v, want %v", savedSample, float64(pub.ModulationsSaved()))
	}
	if runsSample != float64(pub.ModulatorRuns()) {
		t.Errorf("methodpart_modulator_runs_total = %v, want %v", runsSample, float64(pub.ModulatorRuns()))
	}

	// Every member received every event as a post-resize continuation: the
	// single modulation fanned out N ways.
	for i, ls := range subs {
		ls := ls
		waitFor(t, fmt.Sprintf("sub %d delivery", i), func() bool { return ls.total() >= events })
		raw, cont := ls.events()
		if raw != 0 || len(cont) != events {
			t.Errorf("sub %d received raw=%d cont=%d, want 0/%d", i, raw, len(cont), events)
			continue
		}
		for j, pse := range cont {
			if pse != 3 {
				t.Errorf("sub %d event %d split at pse %d, want 3", i, j, pse)
			}
		}
	}
}

// TestBreakerDegradeMigratesClass pins the stale-class guarantee of
// satellite 3: when NACKs from one subscriber trip its breaker and force a
// degraded plan, that subscription migrates out of the shared class
// atomically — events published after the flip are never modulated for it
// under the old class's plan, while an unaffected member of the old class
// keeps its split.
func TestBreakerDegradeMigratesClass(t *testing.T) {
	mem := transport.NewMem()
	reg, _ := imaging.Builtins()
	pub, err := NewPublisher(PublisherConfig{
		Transport:         mem,
		Builtins:          reg,
		HeartbeatInterval: -1,
		BreakerThreshold:  2,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	a := dialLite(t, mem, pub.Addr(), "victim")
	b := dialLite(t, mem, pub.Addr(), "healthy")
	waitFor(t, "registration", func() bool { return pub.Subscribers() == 2 })
	for _, ls := range []*liteSub{a, b} {
		ls.send(t, &wire.Plan{
			Handler: imaging.HandlerName,
			Version: 1,
			Split:   []int32{1, 3},
			Profile: []int32{0, 1, 2, 3},
		})
	}
	waitFor(t, "shared v1 class", func() bool {
		infos := pub.Subscriptions()
		if len(infos) != 2 {
			return false
		}
		for _, info := range infos {
			if info.PlanVersion != 1 {
				return false
			}
		}
		return pub.PlanClasses() == 1
	})

	const warm = 5
	for i := 0; i < warm; i++ {
		if _, err := pub.Publish(imaging.NewFrame(96, 96, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Settle: both sides fully delivered, so no pre-flip frame can arrive
	// after the flip and muddy the post-flip assertion.
	waitFor(t, "warmup delivery", func() bool { return a.total() == warm && b.total() == warm })

	// Two restore failures at the split PSE trip the victim's breaker and
	// force a sender-side degrade.
	for i := 0; i < 2; i++ {
		a.send(t, &wire.Nack{Handler: imaging.HandlerName, Seq: uint64(i), PSEID: 3, Class: wire.NackRestore})
	}
	waitFor(t, "breaker-forced plan flip", func() bool {
		for _, info := range pub.Subscriptions() {
			if info.PlanVersion > 1 {
				for _, id := range info.SplitIDs {
					if id == 3 {
						return false
					}
				}
				return true
			}
		}
		return false
	})
	if got := pub.PlanClasses(); got != 2 {
		t.Fatalf("plan classes = %d after degrade, want 2 (victim migrated out)", got)
	}

	aRaw0, aCont0 := a.events()
	_, bCont0 := b.events()
	const post = 10
	for i := 0; i < post; i++ {
		reached, err := pub.Publish(imaging.NewFrame(96, 96, int64(warm+i)))
		if err != nil {
			t.Fatal(err)
		}
		if reached != 2 {
			t.Fatalf("post-flip publish reached %d, want 2", reached)
		}
	}
	waitFor(t, "post-flip delivery", func() bool { return a.total() == warm+post && b.total() == warm+post })

	// The victim must never again see a continuation split at the poisoned
	// PSE: its events were modulated under the degraded class only.
	aRaw, aCont := a.events()
	for _, pse := range aCont[len(aCont0):] {
		if pse == 3 {
			t.Errorf("victim received a post-flip continuation split at the tripped pse 3")
		}
	}
	if got := (aRaw - aRaw0) + (len(aCont) - len(aCont0)); got != post {
		t.Errorf("victim received %d post-flip events, want %d", got, post)
	}
	// The healthy member's class is untouched: still split at 3.
	_, bCont := b.events()
	if got := len(bCont) - len(bCont0); got != post {
		t.Fatalf("healthy member received %d post-flip continuations, want %d", got, post)
	}
	for _, pse := range bCont[len(bCont0):] {
		if pse != 3 {
			t.Errorf("healthy member's split moved to pse %d, want 3", pse)
		}
	}
}

// TestChurnRacePublishSubscribeDegrade races broadcasts against
// subscription churn, plan pushes and breaker-forced degrades. Run with
// -race; the invariants checked at the end are that the steady subscriber
// survives with a consistent class and keeps receiving.
func TestChurnRacePublishSubscribeDegrade(t *testing.T) {
	mem := transport.NewMem()
	reg, _ := imaging.Builtins()
	pub, err := NewPublisher(PublisherConfig{
		Transport:         mem,
		Builtins:          reg,
		HeartbeatInterval: -1,
		BreakerThreshold:  2,
		QueueDepth:        16,
		OverflowPolicy:    DropOldest,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	steady := dialLite(t, mem, pub.Addr(), "steady")
	waitFor(t, "steady registration", func() bool { return pub.Subscribers() == 1 })

	var wg sync.WaitGroup
	churnDone := make(chan struct{})
	// Churners: connect, push a plan, disconnect — racing the publisher's
	// registry inserts, class joins and retires.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ls, err := dialLiteErr(mem, pub.Addr(), fmt.Sprintf("churn%d-%d", g, i))
				if err != nil {
					continue
				}
				if data, err := wire.Marshal(&wire.Plan{
					Handler: imaging.HandlerName,
					Version: uint64(i%7) + 1,
					Split:   []int32{1, 3},
					Profile: []int32{0, 1, 2, 3},
				}); err == nil {
					_ = ls.conn.WriteFrame(data)
				}
				time.Sleep(time.Duration(i%3) * time.Millisecond)
				ls.close()
			}
		}(g)
	}
	// The steady subscriber flips its plan between raw and post-resize
	// splits, migrating between classes while broadcasts are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(2); v <= 40; v++ {
			split := []int32{1, 3}
			if v%2 == 0 {
				split = []int32{partition.RawPSEID}
			}
			if data, err := wire.Marshal(&wire.Plan{
				Handler: imaging.HandlerName,
				Version: v,
				Split:   split,
				Profile: []int32{0, 1, 2, 3},
			}); err == nil {
				_ = steady.conn.WriteFrame(data)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// A burst of NACKs somewhere in the middle trips the steady breaker and
	// forces a degrade concurrent with the plan pushes above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		for i := 0; i < 4; i++ {
			if data, err := wire.Marshal(&wire.Nack{
				Handler: imaging.HandlerName, Seq: uint64(i), PSEID: 3, Class: wire.NackRestore,
			}); err == nil {
				_ = steady.conn.WriteFrame(data)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() { wg.Wait(); close(churnDone) }()

	// Broadcast throughout the churn. Publish errors are expected — churn
	// subscriptions die mid-fan-out — but must never panic or wedge.
	event := imaging.NewFrame(64, 64, 1)
	for done := false; !done; {
		select {
		case <-churnDone:
			done = true
		default:
			_, _ = pub.Publish(event)
		}
	}

	// Churn is over: the registry must settle back to the steady
	// subscription alone, in exactly one class, and still deliver.
	waitFor(t, "churn retires", func() bool { return pub.Subscribers() == 1 })
	waitFor(t, "single class", func() bool { return pub.PlanClasses() == 1 })
	before := steady.total()
	const tail = 5
	for i := 0; i < tail; i++ {
		reached, err := pub.Publish(imaging.NewFrame(64, 64, int64(i)))
		if err != nil {
			t.Fatalf("post-churn publish: %v", err)
		}
		if reached != 1 {
			t.Fatalf("post-churn publish reached %d, want 1", reached)
		}
	}
	waitFor(t, "post-churn delivery", func() bool { return steady.total() >= before+tail })
}

// newFanoutAllocHarness builds a publisher with n same-class members whose
// pipelines are never started: a DropNewest queue of depth 4 fills and then
// sheds (releasing each frame), so repeated publishes exercise the whole
// publish path — snapshot, modulation, marshal, refcounted fan-out,
// feedback pacing — at steady state without sender goroutines adding
// allocation noise to AllocsPerRun.
func newFanoutAllocHarness(t testing.TB, members int) (*Publisher, mir.Value) {
	t.Helper()
	reg, _ := imaging.Builtins()
	p := &Publisher{cfg: PublisherConfig{
		Builtins:      reg,
		FeedbackEvery: 1 << 60, // never due: feedback marshals are amortized, not per-event
		Logf:          func(string, ...any) {},
	}}
	p.reg.init()
	p.classes.init()
	p.programs = make(map[string]*compiledEntry)
	entry, err := p.compileCached(&wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: "alloc",
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.NewPlan(entry.compiled.NumPSEs(), 0, []int32{partition.RawPSEID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < members; i++ {
		s := &subscription{
			id:       fmt.Sprintf("alloc#%d", i),
			compiled: entry.compiled,
			env:      entry.env,
			progKey:  entry.key,
			trigger:  &profileunit.RateTrigger{EveryMessages: 1 << 60},
			metrics:  &channelMetrics{},
		}
		s.pipe = newSendPipeline(nil, 4, DropNewest, supervision{}, batchConfig{}, s.metrics, nil)
		p.reg.insert(s)
		p.classes.mu.Lock()
		p.joinClassLocked(s, plan, nil)
		p.classes.rebuildLocked()
		p.classes.mu.Unlock()
	}
	return p, imaging.NewFrame(32, 32, 1)
}

// TestPublishFanoutAllocs guards satellite 1: the per-member cost of a
// publish is counters plus a refcounted queue handoff, so the allocation
// count of one publish must not grow with the member count — no fresh
// member slice, error slice or WaitGroup per event.
func TestPublishFanoutAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("the race detector bypasses sync.Pool at random, distorting allocation counts")
	}
	perPublish := func(members int) float64 {
		p, event := newFanoutAllocHarness(t, members)
		// Prime the queues to steady state (full, shedding).
		for i := 0; i < 8; i++ {
			if _, err := p.Publish(event); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := p.Publish(event); err != nil {
				t.Fatal(err)
			}
		})
	}
	one := perPublish(1)
	many := perPublish(64)
	if many > one {
		t.Errorf("publish allocates %.1f/event with 64 members vs %.1f with 1: per-member allocations crept back in", many, one)
	}
	// The absolute budget: modulating and framing one raw event. Anything
	// beyond ~4 means a transient (slice, WaitGroup, snapshot copy) is back
	// on the per-event path.
	if one > 4 {
		t.Errorf("publish allocates %.1f/event with 1 member, budget is 4", one)
	}
}

func BenchmarkPublishFanout(b *testing.B) {
	for _, members := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			p, event := newFanoutAllocHarness(b, members)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Publish(event); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
