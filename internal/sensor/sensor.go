// Package sensor implements the compute-bound sensor-processing application
// of §5.2: SensorFrame events carrying a sample vector, and a chain of
// processing stages (filtering, rectification, envelope, detection ...)
// whose boundaries form the long single-path PSE ladder the paper reports
// ("21 [PSEs] but almost all along the same path"). Splitting the chain at
// stage k runs stages 1..k in the producer and the rest in the consumer.
package sensor

import (
	"fmt"
	"math"
	"strings"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
)

// HandlerName is the sensor handler's name.
const HandlerName = "process"

// DefaultStages is the stage-chain length; with the entry and filter edges
// this yields a PSE ladder of the size the paper reports (~21).
const DefaultStages = 18

// StageWeights returns the per-stage cost weights. They are deliberately
// non-uniform so that a "roughly equal halves" manual split (the paper's
// Divided Version) is measurably imbalanced while the runtime optimizer can
// find the true balance point.
func StageWeights(stages int) []float64 {
	w := make([]float64, stages)
	for i := range w {
		// Later stages are heavier (a ramp from 0.55 to 1.45), so the
		// count-based "half" split places ~62% of the work on the
		// consumer — the imbalance the paper's runtime optimizer
		// exploits against the Divided Version (§5.2: MP wins even
		// without load "because it better balances the load").
		if stages > 1 {
			w[i] = 0.55 + 0.9*float64(i)/float64(stages-1)
		} else {
			w[i] = 1
		}
	}
	return w
}

// HandlerSource builds the sensor-processing handler with the given number
// of chained stages.
func HandlerSource(stages int) string {
	var b strings.Builder
	b.WriteString(`
class SensorFrame {
  id int
  samples floatarray
}

func process(event) {
  ok = instanceof event SensorFrame
  ifnot ok goto done
  f = cast event SensorFrame
  d0 = getfield f samples
`)
	for i := 1; i <= stages; i++ {
		fmt.Fprintf(&b, "  d%d = call stage%d d%d\n", i, i, i-1)
	}
	fmt.Fprintf(&b, "  call deliver d%d\ndone:\n  return\n}\n", stages)
	return b.String()
}

// HandlerUnit assembles the handler.
func HandlerUnit(stages int) *asm.Unit {
	return asm.MustParse(HandlerSource(stages))
}

// NewFrame builds a SensorFrame with n deterministic samples.
func NewFrame(id int64, n int) *mir.Object {
	obj := mir.NewObject("SensorFrame")
	obj.Fields["id"] = mir.Int(id)
	samples := make(mir.FloatArray, n)
	for i := range samples {
		samples[i] = math.Sin(float64(id)*0.37+float64(i)*0.11) + 0.25*math.Sin(float64(i)*1.7)
	}
	obj.Fields["samples"] = samples
	return obj
}

// Sink records the processed outputs delivered at the consumer.
type Sink struct {
	// Outputs are the delivered sample vectors.
	Outputs []mir.FloatArray
}

// Builtins returns the stage builtins (movable, cost = weight × samples)
// and the native deliver sink.
func Builtins(stages int) (*interp.Registry, *Sink) {
	sink := &Sink{}
	reg := interp.NewRegistry()
	weights := StageWeights(stages)
	for i := 1; i <= stages; i++ {
		w := weights[i-1]
		phase := i
		reg.MustRegister(interp.Builtin{
			Name: fmt.Sprintf("stage%d", i),
			Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("stage wants 1 arg")
				}
				in, ok := args[0].(mir.FloatArray)
				if !ok {
					return nil, fmt.Errorf("stage input is %s", args[0].Kind())
				}
				return Stage(in, phase), nil
			},
			Cost: func(args []mir.Value) int64 {
				if len(args) == 1 {
					if in, ok := args[0].(mir.FloatArray); ok {
						return int64(w * float64(len(in)))
					}
				}
				return 1
			},
		})
	}
	reg.MustRegister(interp.Builtin{
		Name:   "deliver",
		Native: true,
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("deliver wants 1 arg")
			}
			out, ok := args[0].(mir.FloatArray)
			if !ok {
				return nil, fmt.Errorf("deliver input is %s", args[0].Kind())
			}
			sink.Outputs = append(sink.Outputs, out)
			return mir.Null{}, nil
		},
	})
	return reg, sink
}

// Stage applies one deterministic signal-processing step: a short moving
// average blended with a rectified phase-shifted copy, keeping the vector
// length (so the data size is constant across the chain, making the
// exec-time model the discriminating one, as in the paper).
func Stage(in mir.FloatArray, phase int) mir.FloatArray {
	n := len(in)
	out := make(mir.FloatArray, n)
	if n == 0 {
		return out
	}
	k := 1 + phase%3
	for i := 0; i < n; i++ {
		var sum float64
		cnt := 0
		for j := i - k; j <= i+k; j++ {
			if j >= 0 && j < n {
				sum += in[j]
				cnt++
			}
		}
		avg := sum / float64(cnt)
		rect := math.Abs(in[(i+phase)%n])
		out[i] = 0.8*avg + 0.2*rect
	}
	return out
}
