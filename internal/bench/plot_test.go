package bench

import (
	"strings"
	"testing"
)

func TestPlotFigure7Renders(t *testing.T) {
	pts := []Figure7Point{
		{AProb: 0, MS: [4]float64{80, 82, 50, 42}},
		{AProb: 0.5, MS: [4]float64{140, 82, 70, 50}},
		{AProb: 1, MS: [4]float64{208, 82, 129, 62}},
	}
	var out strings.Builder
	PlotFigure7(&out, pts)
	text := out.String()
	for _, want := range []string{
		"Figure 7 (chart)",
		"*=Method Partitioning",
		"c=Consumer Version",
		"(AProb)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("plot missing %q:\n%s", want, text)
		}
	}
	// Every series marker must appear in the grid.
	for _, marker := range []string{"c", "p", "d", "*"} {
		if strings.Count(text, marker) < 3 {
			t.Errorf("marker %q barely present:\n%s", marker, text)
		}
	}
}

func TestPlotFigure8Renders(t *testing.T) {
	pts := []Figure8Point{
		{PLenMS: 250, MS: 55},
		{PLenMS: 1000, MS: 54},
		{PLenMS: 4000, MS: 52},
	}
	var out strings.Builder
	PlotFigure8(&out, pts)
	if !strings.Contains(out.String(), "Figure 8 (chart)") {
		t.Errorf("plot:\n%s", out.String())
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	var out strings.Builder
	// Empty inputs are a no-op, not a panic.
	PlotFigure8(&out, nil)
	if out.Len() != 0 {
		t.Errorf("empty plot produced output: %q", out.String())
	}
	// Single point, flat value.
	PlotFigure8(&out, []Figure8Point{{PLenMS: 100, MS: 50}})
	if !strings.Contains(out.String(), "*") {
		t.Errorf("single-point plot has no marker:\n%s", out.String())
	}
}
