package jecho

import (
	"errors"
	"sync"
	"time"

	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// OverflowPolicy decides what happens when a subscription's bounded
// outbound queue is full — i.e. how a publisher degrades under a slow
// receiver (the paper's §2.5 slow-peer scenario, made a policy instead of
// an accident of socket buffering).
type OverflowPolicy int

const (
	// Block makes Publish wait for queue space: lossless, but one stalled
	// peer eventually throttles publishes addressed to it (never those to
	// other subscriptions, which have their own queues and senders).
	Block OverflowPolicy = iota
	// DropNewest discards the event being published when the queue is
	// full: the peer keeps receiving the oldest backlog first.
	DropNewest
	// DropOldest evicts the oldest queued frame to admit the new one: the
	// peer skips ahead to fresher events, the natural choice for
	// last-value streams such as image frames or sensor readings.
	DropOldest
)

// String names the policy for logs and tables.
func (p OverflowPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	default:
		return "unknown"
	}
}

// DefaultQueueDepth is the outbound queue bound when the config leaves
// QueueDepth zero.
const DefaultQueueDepth = 64

// errRetired reports an enqueue on a subscription whose sender has shut
// down (peer dead or publisher closing).
var errRetired = errors.New("jecho: subscription retired")

// batchConfig is the per-subscription batching policy resolved at
// handshake time: zero Bytes disables batching (the peer speaks protocol
// v3, or the publisher left BatchBytes unset).
type batchConfig struct {
	// Bytes caps the coalesced payload of one batch frame. The first
	// frame always fits regardless of size.
	Bytes int
	// Delay is how long the sender lingers for more frames after the
	// first, when the queue alone did not fill the batch (0 = send what
	// the queue held, no waiting).
	Delay time.Duration
	// hists receives per-batch entry counts and fill ratios (nil = none).
	hists *batchHistograms
}

// sendPipeline is the asynchronous sender of one subscription: a bounded
// queue of refcounted event frames plus a coalescing slot for profiling
// feedback, drained by a dedicated goroutine (run). Publish hands frames
// over and returns; only the sender goroutine ever touches the connection
// for writes, so a stalled or dead peer blocks its own pipeline and
// nothing else.
//
// Ownership: enqueue consumes one frame reference on every path — queued
// frames carry their reference until the sender writes (or drops) them,
// and frames rejected by policy, shed by eviction or refused by a retired
// pipeline are released immediately. The publisher marshals an event once
// per plan-equivalence class and Retains one reference per member, so the
// same frame bytes flow through every member's pipeline without copying.
//
// Feedback frames never queue behind events: the newest snapshot overwrites
// any pending one (coalesce-to-latest), because a stale profiling report is
// worthless once a fresher one exists while events are individually
// meaningful.
type sendPipeline struct {
	conn    transport.Conn
	queue   chan queuedFrame
	policy  OverflowPolicy
	metrics *channelMetrics
	sup     supervision
	batch   batchConfig
	// reliable wraps every outgoing event frame in a SeqEvent envelope
	// carrying the queued delivery sequence (protocol v5, AtLeastOnce
	// subscriptions only). Best-effort pipelines never touch the envelope
	// path.
	reliable bool

	// Sender-goroutine only: heartbeat sequence plus the reusable buffers
	// of the batching path. The transports copy on WriteFrame, so the
	// buffers (and batched frames' references) are free as soon as it
	// returns.
	hbSeq    uint64
	hbBuf    []byte
	batchBuf []byte
	wrapBuf  []byte
	frames   []queuedFrame
	entries  [][]byte

	// ctrl carries small marshalled control frames (Lost notices) that
	// must reach the peer through the sender goroutine but are neither
	// events nor feedback.
	ctrl chan []byte

	stop     chan struct{} // closed by shutdown: unblocks enqueuers + sender
	done     chan struct{} // closed when the sender goroutine exits
	stopOnce sync.Once

	fbMu    sync.Mutex
	fb      []byte
	fbReady chan struct{} // cap 1: "a feedback frame is pending"

	// failed is invoked (once, from the sender goroutine) on a transport
	// write error, before the sender exits; the publisher retires the
	// subscription there.
	failed func(error)

	// probe, when set, supplies the Seq of each idle heartbeat, minting it
	// from the subscription's shared probe counter and registering its send
	// time with the link estimator — so heartbeat echoes resolve RTT
	// samples and never collide with the echo-reply probes the control
	// loop mints from the same counter. Nil keeps the private hbSeq.
	probe func() uint64
}

// queuedFrame is one outbound queue slot: the refcounted event frame plus,
// on reliable pipelines, the delivery sequence its SeqEvent envelope will
// carry. Best-effort pipelines leave seq zero and never wrap.
type queuedFrame struct {
	f   *wire.Frame
	seq uint64
}

func newSendPipeline(conn transport.Conn, depth int, policy OverflowPolicy, sup supervision, batch batchConfig, m *channelMetrics, failed func(error)) *sendPipeline {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &sendPipeline{
		conn:    conn,
		queue:   make(chan queuedFrame, depth),
		policy:  policy,
		sup:     sup,
		batch:   batch,
		metrics: m,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		fbReady: make(chan struct{}, 1),
		ctrl:    make(chan []byte, 8),
		failed:  failed,
	}
}

// enqueue admits one event frame under the overflow policy, consuming one
// frame reference on every path. A nil return means the frame was queued
// or dropped by policy; errRetired means the pipeline is gone and the
// caller should treat the subscription as dead.
func (p *sendPipeline) enqueue(q queuedFrame) error {
	select {
	case <-p.stop:
		q.f.Release()
		return errRetired
	default:
	}
	switch p.policy {
	case DropNewest:
		select {
		case p.queue <- q:
		default:
			p.metrics.dropped.Add(1)
			q.f.Release()
			return nil
		}
	case DropOldest:
		for {
			select {
			case p.queue <- q:
			case <-p.stop:
				q.f.Release()
				return errRetired
			default:
				// Queue full: evict one old frame and retry. The inner
				// select is non-blocking because the sender may have
				// drained the queue in the meantime.
				select {
				case old := <-p.queue:
					p.metrics.dropped.Add(1)
					old.f.Release()
				default:
				}
				continue
			}
			break
		}
	default: // Block
		select {
		case p.queue <- q:
		case <-p.stop:
			q.f.Release()
			return errRetired
		}
	}
	p.metrics.enqueued.Add(1)
	p.metrics.noteDepth(len(p.queue))
	// If the pipeline retired between the commit above and here, the
	// sender's shutdown drain may already have swept the queue and missed
	// this frame. Every queued frame is doomed once stop is closed, so
	// popping any one frame and counting it dropped keeps the identity
	// enqueued = sent + dropped exact: each post-drain committer removes
	// one frame, and a pop only finds the queue empty when some other
	// committer's pop already took the frame this one added.
	select {
	case <-p.stop:
		select {
		case old := <-p.queue:
			p.metrics.dropped.Add(1)
			old.f.Release()
		default:
		}
		return errRetired
	default:
	}
	return nil
}

// enqueueControl hands a small marshalled control frame (e.g. a Lost
// notice) to the sender goroutine. The caller yields ownership of data; it
// blocks only while the control lane itself is full.
func (p *sendPipeline) enqueueControl(data []byte) error {
	select {
	case p.ctrl <- data:
		return nil
	case <-p.stop:
		return errRetired
	}
}

// enqueueFeedback stages a profiling feedback frame, replacing any pending
// one (coalesce-to-latest).
func (p *sendPipeline) enqueueFeedback(data []byte) {
	p.fbMu.Lock()
	if p.fb != nil {
		p.metrics.feedbackCoalesced.Add(1)
	}
	p.fb = data
	p.fbMu.Unlock()
	select {
	case p.fbReady <- struct{}{}:
	default:
	}
}

func (p *sendPipeline) takeFeedback() []byte {
	p.fbMu.Lock()
	defer p.fbMu.Unlock()
	fb := p.fb
	p.fb = nil
	return fb
}

// run is the sender goroutine: it drains the queue and the feedback slot
// until shutdown or a write error, and fills idle gaps with heartbeat
// frames so the peer's silence window never expires on a healthy but
// quiet channel. When batching is configured (and was negotiated at
// handshake), a backlog of queued event frames leaves as one batch frame.
func (p *sendPipeline) run() {
	defer close(p.done)
	// Frames still queued when the sender exits were accepted (counted
	// enqueued) but will never reach the wire; count them dropped so the
	// accounting identity enqueued = sent + dropped survives shutdown.
	defer p.drainQueue()
	var heartbeat <-chan time.Time
	if p.sup.interval > 0 {
		t := time.NewTicker(p.sup.interval)
		defer t.Stop()
		heartbeat = t.C
	}
	for {
		// Check stop first so shutdown wins over a backlog.
		select {
		case <-p.stop:
			return
		default:
		}
		select {
		case q := <-p.queue:
			if !p.sendEvents(q) {
				return
			}
		case data := <-p.ctrl:
			if !p.write(data, true) {
				return
			}
		case <-p.fbReady:
			if fb := p.takeFeedback(); fb != nil {
				if !p.write(fb, true) {
					return
				}
				p.metrics.feedbackSent.Add(1)
			}
		case <-heartbeat:
			if !p.writeHeartbeat() {
				return
			}
		case <-p.stop:
			return
		}
	}
}

// drainQueue empties the outbound queue, counting each abandoned frame as
// dropped and releasing its reference. Runs on the sender goroutine after
// the send loop exits; enqueuers racing past the drain compensate in
// enqueue's post-commit stop recheck.
func (p *sendPipeline) drainQueue() {
	for {
		select {
		case q := <-p.queue:
			p.metrics.dropped.Add(1)
			q.f.Release()
		default:
			return
		}
	}
}

// eventBytes resolves the wire bytes of one queued frame: reliable
// pipelines wrap the shared frame bytes in a SeqEvent envelope built in
// the recycled wrapBuf (the envelope is per-subscription; the frame bytes
// stay shared across the class), best-effort ships them as-is.
func (p *sendPipeline) eventBytes(q queuedFrame) []byte {
	if !p.reliable {
		return q.f.Bytes()
	}
	p.wrapBuf = wire.AppendSeqEvent(p.wrapBuf[:0], q.seq, q.f.Bytes())
	return p.wrapBuf
}

// sendEvents ships the first queued frame and, when batching is on,
// whatever else the queue holds (plus a BatchDelay linger) up to
// BatchBytes, as one batch wire frame. A single frame goes out unwrapped,
// so a v4 peer on a quiet channel never pays the batch header.
func (p *sendPipeline) sendEvents(first queuedFrame) bool {
	if p.batch.Bytes <= 0 {
		ok := p.write(p.eventBytes(first), false)
		first.f.Release()
		if !ok {
			p.metrics.dropped.Add(1)
			return false
		}
		p.metrics.eventsSent.Add(1)
		return true
	}
	p.frames = append(p.frames[:0], first)
	total := first.f.Len()
	// Take what the queue already holds without waiting.
fill:
	for total < p.batch.Bytes {
		select {
		case q := <-p.queue:
			p.frames = append(p.frames, q)
			total += q.f.Len()
		default:
			break fill
		}
	}
	// Linger for stragglers: a publisher in mid-burst refills the queue
	// within the delay window, so the batch amortizes more frames.
	if p.batch.Delay > 0 && total < p.batch.Bytes {
		timer := time.NewTimer(p.batch.Delay)
	linger:
		for total < p.batch.Bytes {
			select {
			case q := <-p.queue:
				p.frames = append(p.frames, q)
				total += q.f.Len()
			case <-timer.C:
				break linger
			case <-p.stop:
				// Ship what was collected; these frames are in flight,
				// not abandoned. The drain handles the rest of the queue.
				break linger
			}
		}
		timer.Stop()
	}
	n := len(p.frames)
	var ok bool
	if n == 1 {
		ok = p.write(p.eventBytes(p.frames[0]), false)
	} else {
		p.entries = p.entries[:0]
		if p.reliable {
			// Batch entries must each carry their own envelope. Build them
			// contiguously in one pre-sized buffer so the entry subslices
			// stay valid while AppendBatch copies them out.
			need := 0
			for _, q := range p.frames {
				need += wire.SeqEventOverhead + q.f.Len()
			}
			if cap(p.wrapBuf) < need {
				p.wrapBuf = make([]byte, 0, need)
			}
			p.wrapBuf = p.wrapBuf[:0]
			for _, q := range p.frames {
				start := len(p.wrapBuf)
				p.wrapBuf = wire.AppendSeqEvent(p.wrapBuf, q.seq, q.f.Bytes())
				p.entries = append(p.entries, p.wrapBuf[start:len(p.wrapBuf):len(p.wrapBuf)])
			}
		} else {
			for _, q := range p.frames {
				p.entries = append(p.entries, q.f.Bytes())
			}
		}
		p.batchBuf = wire.AppendBatch(p.batchBuf[:0], p.entries)
		ok = p.write(p.batchBuf, false)
	}
	// The transport copied the bytes (or the write failed); either way the
	// references are consumed here. Clear the scratch so the pooled frames
	// are not pinned until the next batch.
	for i, q := range p.frames {
		q.f.Release()
		p.frames[i] = queuedFrame{}
	}
	p.frames = p.frames[:0]
	if !ok {
		// The write failed with the frames already dequeued: they were
		// enqueued but will never be sent, so they are dropped.
		p.metrics.dropped.Add(uint64(n))
		return false
	}
	p.metrics.eventsSent.Add(uint64(n))
	if n > 1 {
		p.metrics.batchesSent.Add(1)
		p.metrics.batchedEvents.Add(uint64(n))
	}
	p.batch.hists.observe(n, total, p.batch.Bytes)
	return true
}

func (p *sendPipeline) writeHeartbeat() bool {
	var seq uint64
	if p.probe != nil {
		seq = p.probe()
	} else {
		p.hbSeq++
		seq = p.hbSeq
	}
	var err error
	p.hbBuf, err = wire.AppendMarshal(p.hbBuf[:0], &wire.Heartbeat{Seq: seq})
	if err != nil {
		return true // cannot happen; never kill the sender for it
	}
	if !p.write(p.hbBuf, true) {
		return false
	}
	p.metrics.heartbeatsSent.Add(1)
	return true
}

// write ships one frame. control routes the bytes to the control-traffic
// counter (heartbeats, feedback) instead of the event byte counter that
// the bytes-saved ratio divides by.
func (p *sendPipeline) write(data []byte, control bool) bool {
	p.sup.armWrite(p.conn)
	if err := p.conn.WriteFrame(data); err != nil {
		p.metrics.sendErrors.Add(1)
		if p.failed != nil {
			p.failed(err)
		}
		return false
	}
	if control {
		p.metrics.controlBytes.Add(uint64(len(data)) + transport.HeaderSize)
	} else {
		p.metrics.bytesOnWire.Add(uint64(len(data)) + transport.HeaderSize)
	}
	return true
}

// shutdown stops the sender and unblocks pending enqueues. Idempotent; it
// does not close the connection (the owner does) and does not wait for the
// sender goroutine.
func (p *sendPipeline) shutdown() {
	p.stopOnce.Do(func() { close(p.stop) })
}
