package methodpart_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks checks every relative link in the repository's
// markdown files: the target file must exist, and a #fragment must match
// a heading in the target (GitHub anchor rules). External links are not
// fetched.
func TestMarkdownLinks(t *testing.T) {
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	linkRE := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			if path == "" {
				path = file // same-document fragment
			}
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s links to missing file %q", file, path)
				continue
			}
			if frag == "" {
				continue
			}
			anchors, err := headingAnchors(path)
			if err != nil {
				t.Fatal(err)
			}
			if !anchors[frag] {
				t.Errorf("%s links to %q but %s has no heading with that anchor", file, target, path)
			}
		}
	}
}

// headingAnchors collects the GitHub-style anchor ids of every heading in
// a markdown file: lowercase, punctuation stripped (keeping alphanumerics,
// hyphens and spaces), spaces turned into hyphens.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(text, " ") {
			continue
		}
		var b strings.Builder
		for _, r := range strings.ToLower(strings.TrimSpace(text)) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
				b.WriteRune(r)
			case r == ' ':
				b.WriteByte('-')
			}
		}
		out[b.String()] = true
	}
	return out, nil
}
