package partition_test

import (
	"errors"
	"fmt"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// enginePair builds two independent sender/receiver stacks for the same
// handler, one per execution engine.
type enginePair struct {
	stepping *fixture
	compiled *fixture
}

func newEnginePair(t *testing.T) *enginePair {
	t.Helper()
	s := newFixture(t, costmodel.NewDataSize())
	s.c.Engine = partition.EngineStepping
	c := newFixture(t, costmodel.NewDataSize())
	if c.c.Engine != partition.EngineCompiled {
		t.Fatalf("zero-value engine = %v, want compiled", c.c.Engine)
	}
	return &enginePair{stepping: s, compiled: c}
}

// compareOutputs asserts both engines modulated an event identically.
func compareOutputs(t *testing.T, label string, so, co *partition.Output) {
	t.Helper()
	if (so.Raw != nil) != (co.Raw != nil) {
		t.Fatalf("%s: raw presence differs: stepping %v, compiled %v", label, so.Raw != nil, co.Raw != nil)
	}
	if (so.Cont != nil) != (co.Cont != nil) {
		t.Fatalf("%s: continuation presence differs", label)
	}
	if so.Suppressed != co.Suppressed {
		t.Errorf("%s: suppressed: stepping %v, compiled %v", label, so.Suppressed, co.Suppressed)
	}
	if so.SplitPSE != co.SplitPSE {
		t.Errorf("%s: split PSE: stepping %d, compiled %d", label, so.SplitPSE, co.SplitPSE)
	}
	if so.ModWork != co.ModWork {
		t.Errorf("%s: mod work: stepping %d, compiled %d", label, so.ModWork, co.ModWork)
	}
	if so.WireBytes != co.WireBytes {
		t.Errorf("%s: wire bytes: stepping %d, compiled %d", label, so.WireBytes, co.WireBytes)
	}
	if so.Cont != nil && co.Cont != nil {
		if so.Cont.ResumeNode != co.Cont.ResumeNode {
			t.Errorf("%s: resume node: stepping %d, compiled %d", label, so.Cont.ResumeNode, co.Cont.ResumeNode)
		}
		if so.Cont.PSEID != co.Cont.PSEID {
			t.Errorf("%s: continuation PSE: stepping %d, compiled %d", label, so.Cont.PSEID, co.Cont.PSEID)
		}
		if len(so.Cont.Vars) != len(co.Cont.Vars) {
			t.Errorf("%s: hand-over sizes: stepping %d, compiled %d", label, len(so.Cont.Vars), len(co.Cont.Vars))
		}
		for k, sv := range so.Cont.Vars {
			if cv, ok := co.Cont.Vars[k]; !ok || !mir.Equal(sv, cv) {
				t.Errorf("%s: hand-over %q: stepping %v, compiled %v", label, k, sv, cv)
			}
		}
	}
}

// TestEnginesAgreeOnPush runs the paper's push() example through both
// engines under every completable plan and demands identical sender outputs,
// receiver results and display side effects.
func TestEnginesAgreeOnPush(t *testing.T) {
	probe := newEnginePair(t)
	numPSEs := int32(probe.compiled.c.NumPSEs())

	events := []struct {
		name string
		make func() mir.Value
	}{
		{"image", func() mir.Value { return testprog.NewImageData(8, 8) }},
		{"filtered", func() mir.Value { return mir.Int(3) }},
	}

	for id := int32(0); id < numPSEs; id++ {
		split := completeSplitSet(probe.compiled.c, id)
		if split == nil {
			continue
		}
		for _, ev := range events {
			label := fmt.Sprintf("plan %v event %s", split, ev.name)
			pair := newEnginePair(t)
			outs := make(map[string]*partition.Output, 2)
			ress := make(map[string]*partition.Result, 2)
			for name, f := range map[string]*fixture{"stepping": pair.stepping, "compiled": pair.compiled} {
				plan, err := partition.NewPlan(f.c.NumPSEs(), 1, split, nil)
				if err != nil {
					t.Fatal(err)
				}
				f.mod.SetPlan(plan)
				outs[name], ress[name] = f.deliver(t, ev.make())
			}
			compareOutputs(t, label, outs["stepping"], outs["compiled"])
			sres, cres := ress["stepping"], ress["compiled"]
			if (sres != nil) != (cres != nil) {
				t.Fatalf("%s: result presence differs", label)
			}
			if sres != nil {
				if !mir.Equal(sres.Return, cres.Return) {
					t.Errorf("%s: return: stepping %v, compiled %v", label, sres.Return, cres.Return)
				}
				if sres.DemodWork != cres.DemodWork {
					t.Errorf("%s: demod work: stepping %d, compiled %d", label, sres.DemodWork, cres.DemodWork)
				}
				if sres.SplitPSE != cres.SplitPSE {
					t.Errorf("%s: result PSE: stepping %d, compiled %d", label, sres.SplitPSE, cres.SplitPSE)
				}
			}
			sd, cd := *pair.stepping.displayed, *pair.compiled.displayed
			if len(sd) != len(cd) {
				t.Fatalf("%s: displayed %d vs %d images", label, len(sd), len(cd))
			}
			for i := range sd {
				if !mir.Equal(sd[i], cd[i]) {
					t.Errorf("%s: displayed image %d differs", label, i)
				}
			}
		}
	}
}

// TestEnginesAgreeOnRandomPrograms is the cross-engine property test: for
// pseudo-random handlers, every plan, both engines — identical outputs, sink
// effects, returns and work accounting on both sides of the wire.
func TestEnginesAgreeOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := testprog.RandomProgram(seed)
			oracleReg, _ := testprog.SinkRegistry()
			base, err := partition.Compile(prog, nil, oracleReg, costmodel.NewDataSize())
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, prog)
			}
			event := mir.Int(seed*17 + 3)

			for id := int32(0); id < int32(base.NumPSEs()); id++ {
				split := completeSplitSet(base, id)
				if split == nil {
					continue
				}
				type run struct {
					out  *partition.Output
					res  *partition.Result
					sunk []mir.Value
				}
				runs := make(map[partition.Engine]*run, 2)
				for _, engine := range []partition.Engine{partition.EngineStepping, partition.EngineCompiled} {
					c, err := partition.Compile(prog, nil, oracleReg, costmodel.NewDataSize())
					if err != nil {
						t.Fatal(err)
					}
					c.Engine = engine
					plan, err := partition.NewPlan(c.NumPSEs(), 1, split, nil)
					if err != nil {
						t.Fatal(err)
					}
					sendReg, _ := testprog.SinkRegistry()
					recvReg, recvSunk := testprog.SinkRegistry()
					mod := partition.NewModulator(c, interp.NewEnv(nil, sendReg))
					mod.SetPlan(plan)
					demod := partition.NewDemodulator(c, interp.NewEnv(nil, recvReg))

					out, err := mod.Process(event)
					if err != nil {
						t.Fatalf("engine %v plan %v: modulate: %v", engine, split, err)
					}
					var msg any
					if out.Raw != nil {
						msg = out.Raw
					} else {
						data, err := wire.Marshal(out.Cont)
						if err != nil {
							t.Fatal(err)
						}
						msg, err = wire.Unmarshal(data)
						if err != nil {
							t.Fatal(err)
						}
					}
					res, err := demod.Process(msg)
					if err != nil {
						t.Fatalf("engine %v plan %v: demodulate: %v", engine, split, err)
					}
					runs[engine] = &run{out: out, res: res, sunk: *recvSunk}
				}
				s, c := runs[partition.EngineStepping], runs[partition.EngineCompiled]
				label := fmt.Sprintf("seed %d plan %v", seed, split)
				compareOutputs(t, label, s.out, c.out)
				if !mir.Equal(s.res.Return, c.res.Return) {
					t.Errorf("%s: return: stepping %v, compiled %v", label, s.res.Return, c.res.Return)
				}
				if s.res.DemodWork != c.res.DemodWork {
					t.Errorf("%s: demod work: stepping %d, compiled %d", label, s.res.DemodWork, c.res.DemodWork)
				}
				if len(s.sunk) != len(c.sunk) {
					t.Fatalf("%s: sunk %d vs %d values", label, len(s.sunk), len(c.sunk))
				}
				for i := range s.sunk {
					if !mir.Equal(s.sunk[i], c.sunk[i]) {
						t.Errorf("%s: sink[%d]: stepping %v, compiled %v", label, i, s.sunk[i], c.sunk[i])
					}
				}
			}
		})
	}
}

// TestCompiledRunsCounters: the compiled-engine run counters advance only
// when a machine actually executes on the compiled engine — raw
// pass-throughs and the stepping engine never count.
func TestCompiledRunsCounters(t *testing.T) {
	pair := newEnginePair(t)

	// Raw plan: the modulator executes nothing.
	pair.compiled.deliver(t, testprog.NewImageData(4, 4))
	if got := pair.compiled.mod.CompiledRuns(); got != 0 {
		t.Errorf("mod runs after raw delivery = %d, want 0", got)
	}
	// The demodulator ran the whole handler on the compiled engine.
	if got := pair.compiled.demod.CompiledRuns(); got != 1 {
		t.Errorf("demod runs after raw delivery = %d, want 1", got)
	}

	// Split plan: both halves execute.
	split := completeSplitSet(pair.compiled.c, 1)
	if split == nil {
		t.Fatal("no completable plan for PSE 1")
	}
	plan, err := partition.NewPlan(pair.compiled.c.NumPSEs(), 1, split, nil)
	if err != nil {
		t.Fatal(err)
	}
	pair.compiled.mod.SetPlan(plan)
	pair.compiled.deliver(t, testprog.NewImageData(4, 4))
	if got := pair.compiled.mod.CompiledRuns(); got != 1 {
		t.Errorf("mod runs after split delivery = %d, want 1", got)
	}

	// The stepping fixture never touches the compiled engine.
	splan, err := partition.NewPlan(pair.stepping.c.NumPSEs(), 1, split, nil)
	if err != nil {
		t.Fatal(err)
	}
	pair.stepping.mod.SetPlan(splan)
	pair.stepping.deliver(t, testprog.NewImageData(4, 4))
	if got := pair.stepping.mod.CompiledRuns(); got != 0 {
		t.Errorf("stepping mod counted compiled runs: %d", got)
	}
	if got := pair.stepping.demod.CompiledRuns(); got != 0 {
		t.Errorf("stepping demod counted compiled runs: %d", got)
	}
}

// TestApplyWirePlanRejectsVersionZero is the regression test for the stale
// version-0 wire plan: a replayed initial plan must not roll the modulator
// back to raw delivery.
func TestApplyWirePlanRejectsVersionZero(t *testing.T) {
	f := newFixture(t, costmodel.NewDataSize())
	good := &wire.Plan{Handler: "push", Version: 3, Split: []int32{1, 2}}
	if err := f.mod.ApplyWirePlan(good); err != nil {
		// Not all PSE tables admit {1,2}; fall back to raw at v3.
		good = &wire.Plan{Handler: "push", Version: 3, Split: []int32{partition.RawPSEID}}
		if err := f.mod.ApplyWirePlan(good); err != nil {
			t.Fatal(err)
		}
	}
	replayed := &wire.Plan{Handler: "push", Version: 0, Split: []int32{partition.RawPSEID}}
	err := f.mod.ApplyWirePlan(replayed)
	if !errors.Is(err, partition.ErrStalePlan) {
		t.Fatalf("version-0 wire plan: err = %v, want ErrStalePlan", err)
	}
	if f.mod.Plan().Version() != 3 {
		t.Fatalf("version-0 wire plan changed active version to %d", f.mod.Plan().Version())
	}

	// Version 0 is rejected even on a fresh modulator still at its own v0.
	g := newFixture(t, costmodel.NewDataSize())
	if err := g.mod.ApplyWirePlan(replayed); !errors.Is(err, partition.ErrStalePlan) {
		t.Fatalf("version-0 wire plan on fresh modulator: err = %v, want ErrStalePlan", err)
	}
}
