package testprog

import (
	"fmt"
	"math/rand"

	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
)

// RandomProgram generates a deterministic pseudo-random handler: integer
// arithmetic interleaved with structured if-blocks (forward branches only,
// so the UG is a DAG and every edge is convex), ending in a native sink
// call and a return. Generation is structured so every register is defined
// on all paths before use, and the final value depends on the whole
// computation — any incorrect split/restore changes the sink value.
//
// Property tests use it: for every PSE of a random program, splitting there
// and remotely continuing must produce the same sink effects as running the
// handler whole.
func RandomProgram(seed int64) *mir.Program {
	rng := rand.New(rand.NewSource(seed))

	var (
		instrs  []mir.Instr
		defined = []string{"event"}
		pending string // label to attach to the next emitted instruction
		nextReg int
		nextLbl int
	)
	emit := func(in mir.Instr) {
		in.Label = pending
		pending = ""
		instrs = append(instrs, in)
	}
	reg := func() string {
		nextReg++
		return fmt.Sprintf("r%d", nextReg)
	}
	pick := func() string { return defined[rng.Intn(len(defined))] }

	segments := 4 + rng.Intn(8)
	for s := 0; s < segments; s++ {
		switch rng.Intn(5) {
		case 0:
			dst := reg()
			emit(mir.Instr{Op: mir.OpConst, Dst: dst, Lit: mir.Int(rng.Intn(1000) - 500)})
			defined = append(defined, dst)
		case 1, 2:
			dst := reg()
			ops := []mir.BinKind{mir.BinAdd, mir.BinSub, mir.BinMul}
			emit(mir.Instr{Op: mir.OpBin, Dst: dst, Bin: ops[rng.Intn(len(ops))], Src: pick(), Src2: pick()})
			defined = append(defined, dst)
		case 3:
			dst := reg()
			emit(mir.Instr{Op: mir.OpMove, Dst: dst, Src: pick()})
			defined = append(defined, dst)
		default:
			// Structured if-block: out is defined on both paths; the
			// block's scratch registers are used only inside it.
			cond := reg()
			cmp := []mir.BinKind{mir.BinLt, mir.BinGe, mir.BinEq, mir.BinNe}
			emit(mir.Instr{Op: mir.OpBin, Dst: cond, Bin: cmp[rng.Intn(len(cmp))], Src: pick(), Src2: pick()})
			out := reg()
			emit(mir.Instr{Op: mir.OpConst, Dst: out, Lit: mir.Int(rng.Intn(9))})
			nextLbl++
			lbl := fmt.Sprintf("L%d", nextLbl)
			emit(mir.Instr{Op: mir.OpIfNot, Src: cond, Target: lbl})
			blockLen := 1 + rng.Intn(3)
			scratch := pick()
			for b := 0; b < blockLen; b++ {
				t := reg()
				emit(mir.Instr{Op: mir.OpBin, Dst: t, Bin: mir.BinAdd, Src: scratch, Src2: pick()})
				scratch = t
			}
			emit(mir.Instr{Op: mir.OpMove, Dst: out, Src: scratch})
			pending = lbl
			defined = append(defined, out)
		}
	}
	// Epilogue: fold registers into an accumulator, sink it natively,
	// return it. Attaches any pending label.
	acc := "acc"
	emit(mir.Instr{Op: mir.OpConst, Dst: acc, Lit: mir.Int(1)})
	folds := 2 + rng.Intn(3)
	for i := 0; i < folds; i++ {
		emit(mir.Instr{Op: mir.OpBin, Dst: acc, Bin: mir.BinAdd, Src: acc, Src2: pick()})
	}
	emit(mir.Instr{Op: mir.OpCall, Fn: "sink", Args: []string{acc}})
	emit(mir.Instr{Op: mir.OpReturn, Src: acc})

	prog, err := mir.NewProgram(fmt.Sprintf("rand%d", seed), []string{"event"}, instrs)
	if err != nil {
		panic(fmt.Sprintf("testprog: generated invalid program (seed %d): %v", seed, err))
	}
	return prog
}

// SinkRegistry returns a registry with the native sink used by random
// programs, recording every sunk value.
func SinkRegistry() (*interp.Registry, *[]mir.Value) {
	sunk := &[]mir.Value{}
	reg := interp.NewRegistry()
	reg.MustRegister(interp.Builtin{
		Name:   "sink",
		Native: true,
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			*sunk = append(*sunk, args[0])
			return mir.Null{}, nil
		},
	})
	return reg, sunk
}
