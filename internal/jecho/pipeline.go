package jecho

import (
	"errors"
	"sync"
	"time"

	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// OverflowPolicy decides what happens when a subscription's bounded
// outbound queue is full — i.e. how a publisher degrades under a slow
// receiver (the paper's §2.5 slow-peer scenario, made a policy instead of
// an accident of socket buffering).
type OverflowPolicy int

const (
	// Block makes Publish wait for queue space: lossless, but one stalled
	// peer eventually throttles publishes addressed to it (never those to
	// other subscriptions, which have their own queues and senders).
	Block OverflowPolicy = iota
	// DropNewest discards the event being published when the queue is
	// full: the peer keeps receiving the oldest backlog first.
	DropNewest
	// DropOldest evicts the oldest queued frame to admit the new one: the
	// peer skips ahead to fresher events, the natural choice for
	// last-value streams such as image frames or sensor readings.
	DropOldest
)

// String names the policy for logs and tables.
func (p OverflowPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	default:
		return "unknown"
	}
}

// DefaultQueueDepth is the outbound queue bound when the config leaves
// QueueDepth zero.
const DefaultQueueDepth = 64

// errRetired reports an enqueue on a subscription whose sender has shut
// down (peer dead or publisher closing).
var errRetired = errors.New("jecho: subscription retired")

// sendPipeline is the asynchronous sender of one subscription: a bounded
// queue of event frames plus a coalescing slot for profiling feedback,
// drained by a dedicated goroutine (run). Publish hands frames over and
// returns; only the sender goroutine ever touches the connection for
// writes, so a stalled or dead peer blocks its own pipeline and nothing
// else.
//
// Feedback frames never queue behind events: the newest snapshot overwrites
// any pending one (coalesce-to-latest), because a stale profiling report is
// worthless once a fresher one exists while events are individually
// meaningful.
type sendPipeline struct {
	conn    transport.Conn
	queue   chan []byte
	policy  OverflowPolicy
	metrics *channelMetrics
	sup     supervision
	hbSeq   uint64 // sender-goroutine only

	stop     chan struct{} // closed by shutdown: unblocks enqueuers + sender
	done     chan struct{} // closed when the sender goroutine exits
	stopOnce sync.Once

	fbMu    sync.Mutex
	fb      []byte
	fbReady chan struct{} // cap 1: "a feedback frame is pending"

	// failed is invoked (once, from the sender goroutine) on a transport
	// write error, before the sender exits; the publisher retires the
	// subscription there.
	failed func(error)
}

func newSendPipeline(conn transport.Conn, depth int, policy OverflowPolicy, sup supervision, m *channelMetrics, failed func(error)) *sendPipeline {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &sendPipeline{
		conn:    conn,
		queue:   make(chan []byte, depth),
		policy:  policy,
		sup:     sup,
		metrics: m,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		fbReady: make(chan struct{}, 1),
		failed:  failed,
	}
}

// enqueue admits one event frame under the overflow policy. A nil return
// means the frame was queued or dropped by policy; errRetired means the
// pipeline is gone and the caller should treat the subscription as dead.
func (p *sendPipeline) enqueue(data []byte) error {
	select {
	case <-p.stop:
		return errRetired
	default:
	}
	switch p.policy {
	case DropNewest:
		select {
		case p.queue <- data:
		default:
			p.metrics.dropped.Add(1)
			return nil
		}
	case DropOldest:
		for {
			select {
			case p.queue <- data:
			case <-p.stop:
				return errRetired
			default:
				// Queue full: evict one old frame and retry. The inner
				// select is non-blocking because the sender may have
				// drained the queue in the meantime.
				select {
				case <-p.queue:
					p.metrics.dropped.Add(1)
				default:
				}
				continue
			}
			break
		}
	default: // Block
		select {
		case p.queue <- data:
		case <-p.stop:
			return errRetired
		}
	}
	p.metrics.enqueued.Add(1)
	p.metrics.noteDepth(len(p.queue))
	return nil
}

// enqueueFeedback stages a profiling feedback frame, replacing any pending
// one (coalesce-to-latest).
func (p *sendPipeline) enqueueFeedback(data []byte) {
	p.fbMu.Lock()
	if p.fb != nil {
		p.metrics.feedbackCoalesced.Add(1)
	}
	p.fb = data
	p.fbMu.Unlock()
	select {
	case p.fbReady <- struct{}{}:
	default:
	}
}

func (p *sendPipeline) takeFeedback() []byte {
	p.fbMu.Lock()
	defer p.fbMu.Unlock()
	fb := p.fb
	p.fb = nil
	return fb
}

// run is the sender goroutine: it drains the queue and the feedback slot
// until shutdown or a write error, and fills idle gaps with heartbeat
// frames so the peer's silence window never expires on a healthy but
// quiet channel.
func (p *sendPipeline) run() {
	defer close(p.done)
	var heartbeat <-chan time.Time
	if p.sup.interval > 0 {
		t := time.NewTicker(p.sup.interval)
		defer t.Stop()
		heartbeat = t.C
	}
	for {
		// Check stop first so shutdown wins over a backlog.
		select {
		case <-p.stop:
			return
		default:
		}
		select {
		case data := <-p.queue:
			if !p.write(data, false) {
				return
			}
		case <-p.fbReady:
			if fb := p.takeFeedback(); fb != nil {
				if !p.write(fb, true) {
					return
				}
			}
		case <-heartbeat:
			if !p.writeHeartbeat() {
				return
			}
		case <-p.stop:
			return
		}
	}
}

func (p *sendPipeline) writeHeartbeat() bool {
	p.hbSeq++
	data, err := wire.Marshal(&wire.Heartbeat{Seq: p.hbSeq})
	if err != nil {
		return true // cannot happen; never kill the sender for it
	}
	if !p.write(data, false) {
		return false
	}
	p.metrics.heartbeatsSent.Add(1)
	return true
}

func (p *sendPipeline) write(data []byte, feedback bool) bool {
	p.sup.armWrite(p.conn)
	if err := p.conn.WriteFrame(data); err != nil {
		p.metrics.sendErrors.Add(1)
		if p.failed != nil {
			p.failed(err)
		}
		return false
	}
	p.metrics.bytesOnWire.Add(uint64(len(data)) + transport.HeaderSize)
	if feedback {
		p.metrics.feedbackSent.Add(1)
	}
	return true
}

// shutdown stops the sender and unblocks pending enqueues. Idempotent; it
// does not close the connection (the owner does) and does not wait for the
// sender goroutine.
func (p *sendPipeline) shutdown() {
	p.stopOnce.Do(func() { close(p.stop) })
}
