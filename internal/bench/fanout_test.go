package bench

import (
	"strings"
	"testing"
)

func TestFanoutExperimentSharingInvariants(t *testing.T) {
	cfg := FanoutConfig{Frames: 20, Subs: []int{5}, DistinctCap: 5, FrameSize: 16, QueueDepth: 32}
	rows, err := FanoutExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byPlan := map[string]FanoutRow{}
	for _, r := range rows {
		byPlan[r.Plan] = r
	}
	raw := byPlan["raw"]
	if raw.Classes != 1 || raw.ModRuns != uint64(cfg.Frames) {
		t.Fatalf("raw row: classes=%d modRuns=%d, want 1 class and %d shared runs", raw.Classes, raw.ModRuns, cfg.Frames)
	}
	shared := byPlan["split-shared"]
	if shared.Classes != 1 {
		t.Fatalf("split-shared classes = %d, want 1", shared.Classes)
	}
	if shared.ModRuns != uint64(cfg.Frames) {
		t.Fatalf("split-shared modulator runs = %d, want %d (one per event)", shared.ModRuns, cfg.Frames)
	}
	if want := uint64(cfg.Frames * (cfg.Subs[0] - 1)); shared.ModSaved != want {
		t.Fatalf("split-shared modulations saved = %d, want %d", shared.ModSaved, want)
	}
	distinct := byPlan["split-distinct"]
	if distinct.Classes != cfg.Subs[0] {
		t.Fatalf("split-distinct classes = %d, want %d", distinct.Classes, cfg.Subs[0])
	}
	if want := uint64(cfg.Frames * cfg.Subs[0]); distinct.ModRuns != want {
		t.Fatalf("split-distinct modulator runs = %d, want %d (one per event per subscriber)", distinct.ModRuns, want)
	}
	if distinct.ModSaved != 0 {
		t.Fatalf("split-distinct modulations saved = %d, want 0", distinct.ModSaved)
	}

	var buf strings.Builder
	WriteFanout(&buf, rows)
	for _, want := range []string{"split-shared", "events/s/core", "mod saved"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("WriteFanout output missing %q:\n%s", want, buf.String())
		}
	}
}

func BenchmarkFanoutExperiment(b *testing.B) {
	cfg := FanoutConfig{Frames: 10, Subs: []int{4}, DistinctCap: 4, FrameSize: 16, QueueDepth: 32}
	for i := 0; i < b.N; i++ {
		if _, err := FanoutExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
