package asm

import (
	"strings"
	"testing"

	"methodpart/internal/mir"
)

const pushSrc = `
; the paper's push() example
class ImageData {
  width int
  height int
  buff bytes
}

func push(event) {
  z0 = instanceof event ImageData
  ifnot z0 goto done
  r2 = cast event ImageData
  r3 = new ImageData
  call initResize r3 r2
  r4 = move r3
  call displayImage r4
done:
  return
}
`

func TestParsePush(t *testing.T) {
	u, err := Parse(pushSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Classes) != 1 || u.Classes[0].Name != "ImageData" {
		t.Fatalf("classes = %+v", u.Classes)
	}
	if len(u.Classes[0].Fields) != 3 {
		t.Fatalf("fields = %+v", u.Classes[0].Fields)
	}
	p, ok := u.Program("push")
	if !ok {
		t.Fatal("program push missing")
	}
	if len(p.Params) != 1 || p.Params[0] != "event" {
		t.Fatalf("params = %v", p.Params)
	}
	if len(p.Instrs) != 8 {
		t.Fatalf("instr count = %d, want 8", len(p.Instrs))
	}
	if p.Instrs[7].Label != "done" || p.Instrs[7].Op != mir.OpReturn {
		t.Fatalf("last instr = %+v", p.Instrs[7])
	}
	if p.Instrs[1].Op != mir.OpIfNot || p.Instrs[1].Target != "done" {
		t.Fatalf("branch instr = %+v", p.Instrs[1])
	}
}

func TestRoundTrip(t *testing.T) {
	u := MustParse(pushSrc)
	text := Format(u)
	u2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse formatted source: %v\n%s", err, text)
	}
	p1, _ := u.Program("push")
	p2, _ := u2.Program("push")
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instr count changed: %d -> %d", len(p1.Instrs), len(p2.Instrs))
	}
	for i := range p1.Instrs {
		if p1.Instrs[i].String() != p2.Instrs[i].String() {
			t.Errorf("instr %d changed: %q -> %q", i, p1.Instrs[i].String(), p2.Instrs[i].String())
		}
	}
}

func TestLiterals(t *testing.T) {
	src := `
func lits(x) {
  a = const 42
  b = const -7
  c = const 3.5
  d = const true
  e = const false
  f = const "hello ; not a comment // either"
  g = const null
  h = const 0x10
  return a
}
`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := u.Program("lits")
	want := []mir.Value{
		mir.Int(42), mir.Int(-7), mir.Float(3.5), mir.Bool(true),
		mir.Bool(false), mir.Str("hello ; not a comment // either"),
		mir.Null{}, mir.Int(16),
	}
	for i, w := range want {
		if got := p.Instrs[i].Lit; !mir.Equal(got, w) {
			t.Errorf("literal %d = %v, want %v", i, got, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no funcs", `class A {` + "\n}", "no func"},
		{"bad top", "bogus\n", "expected 'class' or 'func'"},
		{"undefined label", "func f(x) {\n goto nowhere\n return\n}", "undefined label"},
		{"duplicate label", "func f(x) {\nl:\n return\nl:\n return\n}", "duplicate label"},
		{"dangling label", "func f(x) {\n return\nl:\n}", "no instruction"},
		{"unknown op", "func f(x) {\n y = frobnicate x\n return\n}", "unknown operation"},
		{"falls off end", "func f(x) {\n y = move x\n}", "falls off the end"},
		{"bad kind", "class A {\n x vector\n}\nfunc f(y) {\n return\n}", "unknown kind"},
		{"unclosed class", "class A {\n x int\n", "missing closing"},
		{"unclosed func", "func f(x) {\n return\n", "missing closing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCommentStripping(t *testing.T) {
	src := `
func f(x) { // trailing comment
  y = move x ; another
  return y
}
`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := u.Program("f")
	if len(p.Instrs) != 2 {
		t.Fatalf("instrs = %d, want 2", len(p.Instrs))
	}
}

func TestClassTableFromUnit(t *testing.T) {
	u := MustParse(pushSrc)
	tbl, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	def, ok := tbl.Lookup("ImageData")
	if !ok {
		t.Fatal("ImageData missing")
	}
	f, ok := def.Field("buff")
	if !ok || f.Kind != mir.KindBytes {
		t.Fatalf("buff field = %+v, %v", f, ok)
	}
}
