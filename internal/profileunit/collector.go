// Package profileunit implements the Runtime Profiling Unit (§2.5): it
// aggregates the per-PSE measurements emitted by the instrumented
// modulator/demodulator pair (continuation sizes, modulator-side work,
// demodulator-side work, path probabilities) and decides — via rate- or
// diff-triggers — when the statistics have changed enough to ship feedback
// to the Reconfiguration Unit.
package profileunit

import (
	"math"
	"sync"

	"methodpart/internal/costmodel"
	"methodpart/internal/partition"
	"methodpart/internal/wire"
)

// DefaultAlpha is the EWMA weight given to each new observation.
const DefaultAlpha = 0.2

// ewma is an exponentially weighted moving average.
type ewma struct {
	v   float64
	set bool
}

func (e *ewma) observe(x, alpha float64) {
	if !e.set {
		e.v = x
		e.set = true
		return
	}
	e.v += alpha * (x - e.v)
}

type pseAgg struct {
	crossings uint64
	bytes     ewma
	modWork   ewma
	demodWork ewma
	splits    uint64
	failures  uint64
	// crossSeen latches the crossings count at the previous SplitAt, so
	// SplitAt can tell whether Cross is observing this edge (profiled and
	// sampled) or the split observation is the only one this edge gets.
	crossSeen uint64
}

// Collector aggregates profiling events. It implements both
// partition.SenderProbe and partition.ReceiverProbe so it can serve a
// co-simulated pair directly, or either half alone with the two sides
// merged through wire.Feedback messages.
type Collector struct {
	mu       sync.Mutex
	alpha    float64
	numPSEs  int
	messages uint64
	// completed counts Done events; in a split deployment (sender and
	// receiver profiling into separate collectors) it substitutes for the
	// sender-side message count as the path-probability denominator.
	completed uint64
	rawBytes  ewma
	total     ewma // total work per message (mod + demod)
	pses      []pseAgg
}

var (
	_ partition.SenderProbe   = (*Collector)(nil)
	_ partition.ReceiverProbe = (*Collector)(nil)
)

// NewCollector creates a collector for a handler with numPSEs PSEs
// (including the raw PSE).
func NewCollector(numPSEs int) *Collector {
	return &Collector{
		alpha:   DefaultAlpha,
		numPSEs: numPSEs,
		pses:    make([]pseAgg, numPSEs),
	}
}

// SetAlpha overrides the EWMA weight (0 < alpha <= 1).
func (c *Collector) SetAlpha(alpha float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if alpha > 0 && alpha <= 1 {
		c.alpha = alpha
	}
}

// Message implements partition.SenderProbe.
func (c *Collector) Message(rawBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.messages++
	c.rawBytes.observe(float64(rawBytes), c.alpha)
}

// Cross implements partition.SenderProbe.
func (c *Collector) Cross(id int32, workAt, contBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(id) >= c.numPSEs || id < 0 {
		return
	}
	a := &c.pses[id]
	a.crossings++
	a.bytes.observe(float64(contBytes), c.alpha)
	a.modWork.observe(float64(workAt), c.alpha)
}

// SplitAt implements partition.SenderProbe. Besides counting the split it
// keeps the edge's statistics fresh: when the active split edge is not
// profiled (or the message was not sampled), Cross never fires for it, and
// without the observation here its count and bytes/modWork EWMAs would
// freeze at whatever profiling saw before the split flag flipped — starving
// the reconfiguration unit of exactly the edge it most needs current data
// for. When Cross *is* observing the edge (crossings advanced since the
// last SplitAt), the observation is skipped so no message is counted twice.
func (c *Collector) SplitAt(id int32, modWork, contBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || int(id) >= c.numPSEs {
		return
	}
	a := &c.pses[id]
	a.splits++
	if a.crossings == a.crossSeen {
		a.crossings++
		a.bytes.observe(float64(contBytes), c.alpha)
		a.modWork.observe(float64(modWork), c.alpha)
	}
	a.crossSeen = a.crossings
}

// Fault records a modulation/demodulation failure attributed to the given
// PSE (the split edge the failing message was produced at). Failure counts
// ride the same Feedback path as the cost statistics, so the
// reconfiguration unit sees them wherever it lives.
func (c *Collector) Fault(id int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || int(id) >= c.numPSEs {
		return
	}
	c.pses[id].failures++
}

// Done implements partition.ReceiverProbe.
func (c *Collector) Done(splitPSE int32, modWork, demodWork int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completed++
	c.total.observe(float64(modWork+demodWork), c.alpha)
	if splitPSE >= 0 && int(splitPSE) < c.numPSEs {
		c.pses[splitPSE].demodWork.observe(float64(demodWork), c.alpha)
	}
}

// Messages returns the number of messages observed at the sender side.
func (c *Collector) Messages() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages
}

// Snapshot derives the per-PSE statistics consumed by the cost models. The
// demodulator-side work of a PSE that is not currently split is estimated
// as totalWork − modWork(PSE), as observed profiles allow (§4.2).
func (c *Collector) Snapshot() map[int32]costmodel.Stat {
	c.mu.Lock()
	defer c.mu.Unlock()
	denom := c.messages
	if c.completed > denom {
		denom = c.completed
	}
	out := make(map[int32]costmodel.Stat, c.numPSEs)
	for id := 0; id < c.numPSEs; id++ {
		a := &c.pses[id]
		st := costmodel.Stat{Count: a.crossings, Failures: a.failures}
		if int32(id) == partition.RawPSEID {
			// The raw PSE is crossed (virtually) by every message. Only
			// the sender observes raw event sizes; a receiver-side
			// collector still contributes its total-work view (Bytes
			// stays 0 and is filled in by Merge), but a collector that
			// has observed nothing at all emits no entry.
			switch {
			case a.bytes.set:
				st.Bytes = a.bytes.v
			case c.rawBytes.set:
				st.Bytes = c.rawBytes.v
			default:
				if c.completed == 0 && a.failures == 0 {
					continue
				}
			}
			st.Count = denom
			st.Prob = 1
			st.ModWork = 0
			st.DemodWork = c.total.v
			out[int32(id)] = st
			continue
		}
		if a.crossings == 0 && a.failures == 0 {
			continue
		}
		if denom > 0 {
			st.Prob = float64(a.crossings) / float64(denom)
			if st.Prob > 1 {
				st.Prob = 1
			}
		}
		st.Bytes = a.bytes.v
		st.ModWork = a.modWork.v
		if a.demodWork.set {
			st.DemodWork = a.demodWork.v
		} else if c.total.set {
			st.DemodWork = math.Max(0, c.total.v-a.modWork.v)
		}
		out[int32(id)] = st
	}
	return out
}

// ToWire converts a snapshot into a Feedback message for the handler.
func (c *Collector) ToWire(handler string) *wire.Feedback {
	snap := c.Snapshot()
	fb := &wire.Feedback{Handler: handler}
	for id := 0; id < c.numPSEs; id++ {
		st, ok := snap[int32(id)]
		if !ok {
			continue
		}
		fb.Stats = append(fb.Stats, wire.PSEStat{
			ID:        int32(id),
			Count:     st.Count,
			Bytes:     st.Bytes,
			ModWork:   st.ModWork,
			DemodWork: st.DemodWork,
			Prob:      st.Prob,
			Failures:  st.Failures,
		})
	}
	return fb
}

// FromWire converts a Feedback message back into model statistics.
func FromWire(fb *wire.Feedback) map[int32]costmodel.Stat {
	out := make(map[int32]costmodel.Stat, len(fb.Stats))
	for _, s := range fb.Stats {
		out[s.ID] = costmodel.Stat{
			Count:     s.Count,
			Bytes:     s.Bytes,
			ModWork:   s.ModWork,
			DemodWork: s.DemodWork,
			Prob:      s.Prob,
			Failures:  s.Failures,
		}
	}
	return out
}

// Merge joins sender-side and receiver-side profiling views when the two
// halves profile into separate collectors. PSEs upstream of the current cut
// are observed at the sender, downstream ones at the receiver, and each
// side knows things the other cannot (the sender sees raw event sizes, the
// receiver sees completion work). Per PSE the fresher view (higher
// observation count — the stale side stops crossing a PSE once the cut
// moves past it) provides the base, with field-wise fill-in: unobserved
// byte sizes come from the other side, and the receiver's demodulator-work
// observation always wins.
func Merge(sender, receiver map[int32]costmodel.Stat) map[int32]costmodel.Stat {
	out := make(map[int32]costmodel.Stat, len(sender)+len(receiver))
	for id, st := range sender {
		out[id] = st
	}
	for id, r := range receiver {
		s, ok := out[id]
		if !ok {
			out[id] = r
			continue
		}
		fresh, stale := r, s
		if s.Count > r.Count {
			fresh, stale = s, r
		}
		m := fresh
		if m.Bytes == 0 && stale.Bytes > 0 {
			m.Bytes = stale.Bytes
		}
		if r.DemodWork > 0 {
			m.DemodWork = r.DemodWork
		} else if m.DemodWork == 0 && stale.DemodWork > 0 {
			m.DemodWork = stale.DemodWork
		}
		// Failures are counted by distinct fault populations (the sender
		// sees modulation faults, the receiver demodulation faults), so
		// the merged view sums rather than picks the fresher side.
		m.Failures = s.Failures + r.Failures
		out[id] = m
	}
	return out
}
